(* Tests for lib/clocks: Lamport timestamps (Algorithm 4) and vector
   timestamps with partial (∞) entries (Algorithms 2/3). *)

module Lam = Core.Lamport
module Vec = Core.Vector

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ----- Lamport -------------------------------------------------------------- *)

let lamport_unit =
  [
    tc "make validates sq" (fun () ->
        Alcotest.check_raises "negative sq" (Invalid_argument
          "Lamport.make: negative sequence number") (fun () ->
            ignore (Lam.make ~sq:(-1) ~pid:1)));
    tc "make validates pid" (fun () ->
        Alcotest.check_raises "pid 0" (Invalid_argument
          "Lamport.make: pid must be >= 1") (fun () ->
            ignore (Lam.make ~sq:0 ~pid:0)));
    tc "initial has sq 0" (fun () ->
        check_bool "is_initial" true (Lam.is_initial (Lam.initial ~pid:3)));
    tc "bump increments" (fun () ->
        let t = Lam.bump ~max_sq:5 ~pid:2 in
        check_int "sq" 6 t.Lam.sq;
        check_int "pid" 2 t.Lam.pid);
    tc "lexicographic: sq dominates" (fun () ->
        check_bool "lt" true
          (Lam.lt (Lam.make ~sq:1 ~pid:9) (Lam.make ~sq:2 ~pid:1)));
    tc "lexicographic: pid breaks ties" (fun () ->
        check_bool "lt" true
          (Lam.lt (Lam.make ~sq:1 ~pid:1) (Lam.make ~sq:1 ~pid:2)));
    tc "distinct pids never equal" (fun () ->
        check_bool "neq" false
          (Lam.equal (Lam.make ~sq:1 ~pid:1) (Lam.make ~sq:1 ~pid:2)));
    tc "max picks larger" (fun () ->
        let a = Lam.make ~sq:3 ~pid:1 and b = Lam.make ~sq:2 ~pid:9 in
        check_bool "max" true (Lam.equal (Lam.max a b) a));
    tc "max_list rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument
          "Lamport.max_list: empty list") (fun () -> ignore (Lam.max_list [])));
    tc "max_list finds maximum" (fun () ->
        let l = [ Lam.make ~sq:1 ~pid:3; Lam.make ~sq:4 ~pid:1; Lam.make ~sq:4 ~pid:2 ] in
        check_bool "max" true
          (Lam.equal (Lam.max_list l) (Lam.make ~sq:4 ~pid:2)));
    tc "to_string renders" (fun () ->
        Alcotest.(check string) "pp" "\u{27E8}2,3\u{27E9}"
          (Lam.to_string (Lam.make ~sq:2 ~pid:3)));
  ]

let lamport_props =
  let gen =
    QCheck.make
      ~print:(fun t -> Lam.to_string t)
      QCheck.Gen.(
        map2 (fun sq pid -> Lam.make ~sq ~pid) (int_bound 100)
          (map (fun p -> p + 1) (int_bound 9)))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"lamport order is total" ~count:200
         (QCheck.pair gen gen) (fun (a, b) ->
           Lam.lt a b || Lam.lt b a || Lam.equal a b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"lamport order is transitive" ~count:200
         (QCheck.triple gen gen gen) (fun (a, b, c) ->
           QCheck.assume (Lam.le a b && Lam.le b c);
           Lam.le a c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"lamport compare antisymmetric" ~count:200
         (QCheck.pair gen gen) (fun (a, b) ->
           Lam.compare a b = -Lam.compare b a));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bump exceeds its input" ~count:200 gen
         (fun t -> Lam.lt t (Lam.bump ~max_sq:t.Lam.sq ~pid:t.Lam.pid)));
  ]

(* ----- Vector --------------------------------------------------------------- *)

let vec_unit =
  [
    tc "all_inf is maximal" (fun () ->
        check_bool "le" true (Vec.le (Vec.of_ints [ 9; 9; 9 ]) (Vec.all_inf 3)));
    tc "zero is minimal" (fun () ->
        check_bool "le" true (Vec.le (Vec.zero 3) (Vec.of_ints [ 0; 0; 1 ])));
    tc "dimension mismatch raises" (fun () ->
        Alcotest.check_raises "dim" (Invalid_argument
          "Vector.compare: dimension mismatch") (fun () ->
            ignore (Vec.compare (Vec.zero 2) (Vec.zero 3))));
    tc "set fills a component" (fun () ->
        let v = Vec.set (Vec.all_inf 3) 2 5 in
        check_bool "entry" true (Vec.get v 2 = Vec.Fin 5);
        check_bool "others inf" true (Vec.get v 1 = Vec.Inf));
    tc "set is functional" (fun () ->
        let v = Vec.all_inf 2 in
        ignore (Vec.set v 1 0);
        check_bool "unchanged" true (Vec.get v 1 = Vec.Inf));
    tc "set rejects increases" (fun () ->
        let v = Vec.set (Vec.all_inf 2) 1 3 in
        Alcotest.check_raises "incr" (Invalid_argument
          "Vector.set: components may only decrease from Inf") (fun () ->
            ignore (Vec.set v 1 4)));
    tc "set allows equal and smaller" (fun () ->
        let v = Vec.set (Vec.all_inf 2) 1 3 in
        ignore (Vec.set v 1 3);
        ignore (Vec.set v 1 2));
    tc "lexicographic: first differing wins" (fun () ->
        check_bool "lt" true
          (Vec.lt (Vec.of_ints [ 0; 9; 9 ]) (Vec.of_ints [ 1; 0; 0 ])));
    tc "inf beats any finite in lex order" (fun () ->
        (* the key Figure-3 fact: [1,∞,∞] > [0,1,0] *)
        let partial = Vec.set (Vec.all_inf 3) 1 1 in
        check_bool "gt" true (Vec.lt (Vec.of_ints [ 0; 1; 0 ]) partial));
    tc "partial below complete when prefix smaller" (fun () ->
        (* the other Figure-3 fact: [0,0,1] <= [0,1,0] *)
        check_bool "le" true
          (Vec.le (Vec.of_ints [ 0; 0; 1 ]) (Vec.of_ints [ 0; 1; 0 ])));
    tc "is_complete" (fun () ->
        check_bool "complete" true (Vec.is_complete (Vec.of_ints [ 1; 2 ]));
        check_bool "incomplete" false (Vec.is_complete (Vec.set (Vec.all_inf 2) 1 1)));
    tc "is_zero" (fun () ->
        check_bool "zero" true (Vec.is_zero (Vec.zero 4));
        check_bool "nonzero" false (Vec.is_zero (Vec.of_ints [ 0; 1 ])));
    tc "componentwise_le vs lex disagree sometimes" (fun () ->
        let a = Vec.of_ints [ 0; 5 ] and b = Vec.of_ints [ 1; 0 ] in
        check_bool "lex lt" true (Vec.lt a b);
        check_bool "not cw" false (Vec.componentwise_le a b));
    tc "max_list lexicographic" (fun () ->
        let l = [ Vec.of_ints [ 1; 0 ]; Vec.of_ints [ 0; 9 ]; Vec.of_ints [ 1; 1 ] ] in
        check_bool "max" true (Vec.equal (Vec.max_list l) (Vec.of_ints [ 1; 1 ])));
    tc "of_list rejects empty" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Vector.of_list: empty")
          (fun () -> ignore (Vec.of_list [])));
    tc "pp renders inf" (fun () ->
        Alcotest.(check string) "pp" "[\u{221E},0]"
          (Vec.to_string (Vec.set (Vec.all_inf 2) 2 0)));
  ]

let vec_gen n =
  QCheck.make
    ~print:(fun v -> Vec.to_string v)
    QCheck.Gen.(
      map
        (fun l ->
          Vec.of_list
            (List.map (function x when x > 8 -> Vec.Inf | x -> Vec.Fin x) l))
        (list_size (return n) (int_bound 10)))

let vec_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"vector order is total" ~count:300
         (QCheck.pair (vec_gen 4) (vec_gen 4)) (fun (a, b) ->
           Vec.lt a b || Vec.lt b a || Vec.equal a b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"vector order transitive" ~count:300
         (QCheck.triple (vec_gen 3) (vec_gen 3) (vec_gen 3)) (fun (a, b, c) ->
           QCheck.assume (Vec.le a b && Vec.le b c);
           Vec.le a c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"componentwise_le implies lex le" ~count:300
         (QCheck.pair (vec_gen 4) (vec_gen 4)) (fun (a, b) ->
           QCheck.assume (Vec.componentwise_le a b);
           Vec.le a b));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"filling an inf component never increases"
         ~count:300
         (QCheck.pair (vec_gen 4) (QCheck.int_bound 8))
         (fun (v, x) ->
           (* Observation 25: a forming timestamp is non-increasing *)
           let idx =
             let rec find i =
               if i > 4 then None
               else if Vec.get v i = Vec.Inf then Some i
               else find (i + 1)
             in
             find 1
           in
           match idx with
           | None -> QCheck.assume_fail ()
           | Some i -> Vec.le (Vec.set v i x) v));
  ]

let suite =
  [
    ("clocks.lamport", lamport_unit @ lamport_props);
    ("clocks.vector", vec_unit @ vec_props);
  ]
