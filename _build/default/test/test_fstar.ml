(* Tests for the Theorem-14 construction f*: every linearizable SWMR
   register history admits a write strong-linearization, computed by
   ordering writes by the (single, sequential) writer and trimming a
   trailing unread pending write. *)

module V = Core.Value
module Op = Core.Op
module Hist = Core.Hist
module F = Core.Fstar

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let init = V.Int 0

let op ?responded ?result ~id ~proc ~kind ~invoked () =
  Op.make ~id ~proc ~obj:"R" ~kind ~invoked ?responded ?result ()

let w ?responded ~id ~invoked v =
  op ~id ~proc:1 ~kind:(Op.Write (V.Int v)) ~invoked ?responded ()

let r ~id ~proc ~invoked ~responded v =
  op ~id ~proc ~kind:Op.Read ~invoked ~responded ~result:(V.Int v) ()

let unit_tests =
  [
    tc "empty history" (fun () ->
        check_bool "some" true (F.linearize ~init Hist.empty = Some []));
    tc "reads only, initial value" (fun () ->
        let h =
          Hist.of_ops
            [ r ~id:1 ~proc:2 ~invoked:1 ~responded:2 0;
              r ~id:2 ~proc:3 ~invoked:3 ~responded:4 0 ]
        in
        match F.linearize ~init h with
        | Some s -> Alcotest.(check int) "two" 2 (List.length s)
        | None -> Alcotest.fail "linearizable");
    tc "reads only, wrong value" (fun () ->
        let h = Hist.of_ops [ r ~id:1 ~proc:2 ~invoked:1 ~responded:2 77 ] in
        check_bool "none" true (F.linearize ~init h = None));
    tc "writes ordered by the writer" (fun () ->
        let h =
          Hist.of_ops
            [
              w ~id:1 ~invoked:1 ~responded:2 100;
              w ~id:2 ~invoked:3 ~responded:4 200;
              r ~id:3 ~proc:2 ~invoked:5 ~responded:6 200;
            ]
        in
        match F.linearize ~init h with
        | Some s ->
            Alcotest.(check (list int)) "order" [ 1; 2; 3 ]
              (List.map (fun (o : Op.t) -> o.id) s);
            check_bool "valid" true (Hist.Seq.is_linearization_of ~init h s)
        | None -> Alcotest.fail "linearizable");
    tc "read placed after the write it observed" (fun () ->
        let h =
          Hist.of_ops
            [
              w ~id:1 ~invoked:1 ~responded:4 100;
              r ~id:2 ~proc:2 ~invoked:2 ~responded:3 0 (* reads init *);
              w ~id:3 ~invoked:5 ~responded:8 200;
              r ~id:4 ~proc:2 ~invoked:6 ~responded:7 100 (* still old *);
            ]
        in
        match F.linearize ~init h with
        | Some s ->
            check_bool "valid" true (Hist.Seq.is_linearization_of ~init h s)
        | None -> Alcotest.fail "linearizable");
    tc "pending unread write is trimmed (Lemma 67)" (fun () ->
        let h =
          Hist.of_ops
            [ w ~id:1 ~invoked:1 ~responded:2 100; w ~id:2 ~invoked:3 200 ]
        in
        match F.linearize ~init h with
        | Some s ->
            Alcotest.(check (list int)) "trimmed" [ 1 ]
              (List.map (fun (o : Op.t) -> o.id) s)
        | None -> Alcotest.fail "linearizable");
    tc "pending write read by someone is kept" (fun () ->
        let h =
          Hist.of_ops
            [
              w ~id:1 ~invoked:1 ~responded:2 100;
              w ~id:2 ~invoked:3 200;
              r ~id:3 ~proc:2 ~invoked:4 ~responded:5 200;
            ]
        in
        match F.linearize ~init h with
        | Some s ->
            Alcotest.(check (list int)) "kept" [ 1; 2; 3 ]
              (List.map (fun (o : Op.t) -> o.id) s)
        | None -> Alcotest.fail "linearizable");
    tc "non-linearizable input rejected" (fun () ->
        (* read of the old value strictly after the new write completed *)
        let h =
          Hist.of_ops
            [
              w ~id:1 ~invoked:1 ~responded:2 100;
              r ~id:2 ~proc:2 ~invoked:3 ~responded:4 0;
            ]
        in
        check_bool "none" true (F.linearize ~init h = None));
    tc "multi-writer input rejected loudly" (fun () ->
        let h =
          Hist.of_ops
            [
              w ~id:1 ~invoked:1 ~responded:2 100;
              op ~id:2 ~proc:2 ~kind:(Op.Write (V.Int 200)) ~invoked:3
                ~responded:4 ();
            ]
        in
        try
          ignore (F.linearize ~init h);
          Alcotest.fail "accepted two writers"
        with Invalid_argument _ -> ());
    tc "wsl_function: monotone write orders on a prefix chain" (fun () ->
        let h =
          Hist.of_ops
            [
              w ~id:1 ~invoked:1 ~responded:3 100;
              r ~id:2 ~proc:2 ~invoked:2 ~responded:5 100;
              w ~id:3 ~invoked:6 ~responded:8 200;
              r ~id:4 ~proc:3 ~invoked:7 ~responded:9 200;
            ]
        in
        match F.wsl_function ~init h with
        | Ok orders ->
            Alcotest.(check int) "one per prefix" (Hist.length h + 1)
              (List.length orders)
        | Error e -> Alcotest.fail e);
    tc "wsl_function flags non-linearizable prefixes" (fun () ->
        let h =
          Hist.of_ops
            [
              w ~id:1 ~invoked:1 ~responded:2 100;
              r ~id:2 ~proc:2 ~invoked:3 ~responded:4 0;
            ]
        in
        match F.wsl_function ~init h with
        | Ok _ -> Alcotest.fail "accepted a bad history"
        | Error _ -> ());
  ]

(* property: on histories recorded from the ABD register (single writer),
   f* always succeeds with monotone write orders — the executable content
   of Theorem 14 *)
let props =
  let seed_arb =
    QCheck.make ~print:Int64.to_string
      QCheck.Gen.(map Int64.of_int (int_bound 1_000_000))
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Thm 14 on ABD histories (no crashes)" ~count:15
         seed_arb (fun seed ->
           let run = Core.Abd_runs.execute { Core.Abd_runs.default with seed } in
           QCheck.assume run.Core.Abd_runs.completed;
           match F.wsl_function ~init run.Core.Abd_runs.history with
           | Ok _ -> true
           | Error _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"Thm 14 on ABD histories (minority crashes)"
         ~count:10 seed_arb (fun seed ->
           let run =
             Core.Abd_runs.execute
               { Core.Abd_runs.default with seed; crash = [ 3; 4 ] }
           in
           QCheck.assume run.Core.Abd_runs.completed;
           match F.wsl_function ~init run.Core.Abd_runs.history with
           | Ok _ -> true
           | Error _ -> false));
  ]

let suite = [ ("fstar.unit", unit_tests); ("fstar.props", props) ]
