(* Tests for the linearizability decision procedure (Definition 2). *)

module V = Core.Value
module Op = Core.Op
module Hist = Core.Hist
module L = Core.Lincheck
module Gen = Core.Histgen

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let init = V.Int 0

let op ?responded ?result ~id ~proc ~kind ~invoked () =
  Op.make ~id ~proc ~obj:"R" ~kind ~invoked ?responded ?result ()

let w ?responded ~id ~proc ~invoked v =
  op ~id ~proc ~kind:(Op.Write (V.Int v)) ~invoked ?responded ()

let r ~id ~proc ~invoked ~responded v =
  op ~id ~proc ~kind:Op.Read ~invoked ~responded ~result:(V.Int v) ()

let h ops = Hist.of_ops ops

let unit_tests =
  [
    tc "empty history is linearizable" (fun () ->
        check_bool "empty" true (L.check ~init Hist.empty));
    tc "sequential write;read is linearizable" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h [ w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
                  r ~id:2 ~proc:2 ~invoked:3 ~responded:4 100 ])));
    tc "stale read after a completed write is NOT linearizable" (fun () ->
        check_bool "not lin" false
          (L.check ~init
             (h [ w ~id:1 ~proc:1 ~invoked:1 ~responded:2 100;
                  r ~id:2 ~proc:2 ~invoked:3 ~responded:4 0 ])));
    tc "stale read concurrent with the write IS linearizable" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h [ w ~id:1 ~proc:1 ~invoked:1 ~responded:5 100;
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:4 0 ])));
    tc "read of a never-written value is NOT linearizable" (fun () ->
        check_bool "not lin" false
          (L.check ~init
             (h [ r ~id:1 ~proc:1 ~invoked:1 ~responded:2 999 ])));
    tc "new-old inversion between sequential reads is NOT linearizable" (fun () ->
        (* r1 sees the new value, then a later r2 (same or other proc,
           strictly after) sees the old one *)
        check_bool "not lin" false
          (L.check ~init
             (h
                [
                  w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:3 100;
                  r ~id:3 ~proc:2 ~invoked:4 ~responded:5 0;
                ])));
    tc "old-then-new across concurrent reads IS linearizable" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h
                [
                  w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:3 0;
                  r ~id:3 ~proc:2 ~invoked:4 ~responded:5 100;
                ])));
    tc "read may return a PENDING write's value" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h
                [
                  w ~id:1 ~proc:1 ~invoked:1 100 (* never responds *);
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:3 100;
                ])));
    tc "pending write may also be ignored" (fun () ->
        check_bool "lin" true
          (L.check ~init
             (h
                [
                  w ~id:1 ~proc:1 ~invoked:1 100;
                  r ~id:2 ~proc:2 ~invoked:2 ~responded:3 0;
                ])));
    tc "two concurrent writes order both ways" (fun () ->
        let base =
          [ w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
            w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200 ]
        in
        check_bool "reads 100 last" true
          (L.check ~init
             (h (base @ [ r ~id:3 ~proc:3 ~invoked:11 ~responded:12 100 ])));
        check_bool "reads 200 last" true
          (L.check ~init
             (h (base @ [ r ~id:3 ~proc:3 ~invoked:11 ~responded:12 200 ])));
        (* but two sequential readers cannot disagree on the final order *)
        check_bool "contradictory readers" false
          (L.check ~init
             (h
                (base
                @ [
                    r ~id:3 ~proc:3 ~invoked:11 ~responded:12 100;
                    r ~id:4 ~proc:3 ~invoked:13 ~responded:14 200;
                    r ~id:5 ~proc:4 ~invoked:15 ~responded:16 100;
                  ]))));
    tc "witness is a valid linearization" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
              r ~id:3 ~proc:3 ~invoked:3 ~responded:8 100;
              r ~id:4 ~proc:4 ~invoked:11 ~responded:12 200;
            ]
        in
        match L.witness ~init hist with
        | Some s ->
            check_bool "valid" true (Hist.Seq.is_linearization_of ~init hist s)
        | None -> Alcotest.fail "expected linearizable");
    tc "witness is None when not linearizable" (fun () ->
        check_bool "none" true
          (L.witness ~init
             (h [ r ~id:1 ~proc:1 ~invoked:1 ~responded:2 1 ])
          = None));
    tc "multi-object: per-object locality" (fun () ->
        let mixed =
          Hist.of_ops
            [
              Op.make ~id:1 ~proc:1 ~obj:"A" ~kind:(Op.Write (V.Int 1))
                ~invoked:1 ~responded:2 ();
              Op.make ~id:2 ~proc:2 ~obj:"B" ~kind:Op.Read ~invoked:3
                ~responded:4 ~result:(V.Int 0) ();
            ]
        in
        check_bool "both ok" true
          (L.check_multi ~init_of:(fun _ -> V.Int 0) mixed));
    tc "multi-object check rejected by single-object checker" (fun () ->
        let mixed =
          Hist.of_ops
            [
              Op.make ~id:1 ~proc:1 ~obj:"A" ~kind:Op.Read ~invoked:1
                ~responded:2 ~result:(V.Int 0) ();
              Op.make ~id:2 ~proc:2 ~obj:"B" ~kind:Op.Read ~invoked:3
                ~responded:4 ~result:(V.Int 0) ();
            ]
        in
        try
          ignore (L.check ~init mixed);
          Alcotest.fail "accepted multi-object history"
        with Invalid_argument _ -> ());
  ]

let enumerate_tests =
  [
    tc "enumerate finds both orders of concurrent writes" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
            ]
        in
        let ls = L.enumerate ~init hist ~limit:100 in
        Alcotest.(check int) "two" 2 (List.length ls));
    tc "enumerate_write_orders dedups by write sequence" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
              r ~id:3 ~proc:3 ~invoked:11 ~responded:12 200;
            ]
        in
        (* only one write order is consistent with the read *)
        Alcotest.(check int) "one" 1
          (List.length (L.enumerate_write_orders ~init hist ~limit:100)));
    tc "forced write prefix accepts consistent order" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
            ]
        in
        check_bool "1 then 2" true
          (L.check_with_forced_write_prefix ~init hist ~prefix:[ 1; 2 ]);
        check_bool "2 then 1" true
          (L.check_with_forced_write_prefix ~init hist ~prefix:[ 2; 1 ]));
    tc "forced write prefix rejects contradicted order" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
              r ~id:3 ~proc:3 ~invoked:11 ~responded:12 200;
            ]
        in
        (* the read of 200 forces write 2 last *)
        check_bool "2 then 1 impossible" false
          (L.check_with_forced_write_prefix ~init hist ~prefix:[ 2; 1 ]);
        check_bool "1 then 2 fine" true
          (L.check_with_forced_write_prefix ~init hist ~prefix:[ 1; 2 ]));
    tc "forced full prefix" (fun () ->
        let a = w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100 in
        let b = r ~id:2 ~proc:2 ~invoked:2 ~responded:9 0 in
        let hist = h [ a; b ] in
        check_bool "read first" true
          (L.check_with_forced_prefix ~init hist ~prefix:[ 2; 1 ]);
        check_bool "write first breaks read" false
          (L.check_with_forced_prefix ~init hist ~prefix:[ 1; 2 ]));
    tc "write_orders_extending" (fun () ->
        let hist =
          h
            [
              w ~id:1 ~proc:1 ~invoked:1 ~responded:10 100;
              w ~id:2 ~proc:2 ~invoked:2 ~responded:9 200;
            ]
        in
        Alcotest.(check int) "extending [1]" 1
          (List.length (L.write_orders_extending ~init hist ~prefix:[ 1 ] ~limit:50)));
    tc "too large raises" (fun () ->
        let ops =
          List.init 63 (fun i ->
              w ~id:(i + 1) ~proc:(i + 1) ~invoked:((i * 2) + 1)
                ~responded:((i * 2) + 2)
                (100 + i))
        in
        try
          ignore (L.check ~init (h ops));
          Alcotest.fail "accepted 63 ops"
        with L.Too_large -> ());
  ]

(* property: histories produced by an atomic register are always accepted,
   and the generator's own witness agrees with the checker's *)
let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"atomic histories always linearizable" ~count:150
         (Gen.arb_atomic Gen.default_spec) (fun hist ->
           L.check ~init:Gen.default_spec.Gen.init hist));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"checker witness always validates" ~count:150
         (Gen.arb_atomic Gen.default_spec) (fun hist ->
           match L.witness ~init:Gen.default_spec.Gen.init hist with
           | Some s ->
               Hist.Seq.is_linearization_of ~init:Gen.default_spec.Gen.init
                 hist s
           | None -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"on arbitrary histories, check = witness existence" ~count:150
         (Gen.arb_arbitrary { Gen.default_spec with n_ops = 6 })
         (fun hist ->
           L.check ~init:Gen.default_spec.Gen.init hist
           = Option.is_some (L.witness ~init:Gen.default_spec.Gen.init hist)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"non-distinct write values: atomic histories still accepted"
         ~count:100
         (Gen.arb_atomic { Gen.default_spec with distinct_writes = false })
         (fun hist -> L.check ~init:Gen.default_spec.Gen.init hist));
  ]

let suite =
  [
    ("lincheck.unit", unit_tests);
    ("lincheck.enumerate", enumerate_tests);
    ("lincheck.props", props);
  ]

(* ----- differential oracle -------------------------------------------------------
   A brute-force reference checker: enumerate every permutation of every
   subset that contains all complete ops (pending writes optional), and
   test the three properties of Definition 2 directly via Hist.Seq.  Only
   tractable for tiny histories — which is exactly what makes it a trusted
   oracle for the DFS. *)

let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: ys as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insertions x ys)

let rec permutations = function
  | [] -> [ [] ]
  | x :: xs -> List.concat_map (insertions x) (permutations xs)

let rec subsets = function
  | [] -> [ [] ]
  | x :: xs ->
      let rest = subsets xs in
      rest @ List.map (fun s -> x :: s) rest

let brute_force ~init hist =
  let ops = Hist.ops hist in
  let complete = List.filter Op.is_complete ops in
  let pending_writes =
    List.filter (fun o -> Op.is_write o && Op.is_pending o) ops
  in
  List.exists
    (fun extra ->
      List.exists
        (fun seq -> Hist.Seq.is_linearization_of ~init hist seq)
        (permutations (complete @ extra)))
    (subsets pending_writes)

let oracle_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"DFS checker agrees with the brute-force oracle (arbitrary)"
         ~count:120
         (Gen.arb_arbitrary { Gen.default_spec with n_ops = 5; n_procs = 3 })
         (fun hist ->
           QCheck.assume (List.length (Hist.ops hist) <= 6);
           L.check ~init hist = brute_force ~init hist));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"DFS checker agrees with the oracle (repeated write values)"
         ~count:120
         (Gen.arb_arbitrary
            { Gen.default_spec with n_ops = 5; n_procs = 3; distinct_writes = false })
         (fun hist ->
           QCheck.assume (List.length (Hist.ops hist) <= 6);
           L.check ~init hist = brute_force ~init hist));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"DFS checker agrees with the oracle (atomic histories)"
         ~count:80
         (Gen.arb_atomic { Gen.default_spec with n_ops = 5 })
         (fun hist ->
           QCheck.assume (List.length (Hist.ops hist) <= 6);
           L.check ~init hist && brute_force ~init hist));
  ]

let suite = suite @ [ ("lincheck.oracle", oracle_tests) ]
