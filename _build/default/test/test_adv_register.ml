(* Tests for the adversarial register — the executable form of the paper's
   register hierarchy (atomic / write strongly-linearizable / merely
   linearizable).  These tests pin down exactly the powers each mode
   grants and denies, and check that every produced history is
   linearizable with the committed sequence as witness. *)

module V = Core.Value
module Op = Core.Op
module Adv = Core.Adv_register
module Sched = Core.Sched
module Trace = Core.Trace
module Hist = Core.Hist

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk mode =
  let sched = Sched.create ~seed:3L () in
  let r = Adv.create ~sched ~name:"R" ~init:(V.Int 0) ~mode in
  (sched, r)

let step sched pid = ignore (Sched.step sched ~pid)

(* drive one process's single op to completion *)
let complete sched pid =
  let fuel = ref 10 in
  while Sched.runnable sched ~pid && !fuel > 0 do
    decr fuel;
    step sched pid
  done

let history sched = Trace.history (Sched.trace sched)

(* ----- atomic mode ------------------------------------------------------------ *)

let atomic_tests =
  [
    tc "write/read round-trip" (fun () ->
        let sched, r = mk Adv.Atomic in
        let got = ref V.Bot in
        Sched.spawn sched ~pid:1 (fun () ->
            Adv.write r ~proc:1 (V.Int 5);
            got := Adv.read r ~proc:1);
        complete sched 1;
        check_bool "value" true (V.equal !got (V.Int 5)));
    tc "ops respond within one step" (fun () ->
        let sched, r = mk Adv.Atomic in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        step sched 1;
        check_int "no pending" 0 (List.length (Adv.pending r)));
    tc "adversary may not commit" (fun () ->
        let sched, r = mk Adv.Atomic in
        Sched.spawn sched ~pid:1 (fun () ->
            Adv.write r ~proc:1 (V.Int 1);
            Adv.write r ~proc:1 (V.Int 2));
        step sched 1;
        (* no pending op exists, and commit is refused by mode anyway *)
        (try
           Adv.commit r ~op_id:1 ~pos:0;
           Alcotest.fail "commit accepted in atomic mode"
         with Adv.Illegal _ -> ());
        complete sched 1);
    tc "interleaved atomic ops read latest" (fun () ->
        let sched, r = mk Adv.Atomic in
        let got = ref V.Bot in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 7));
        Sched.spawn sched ~pid:2 (fun () -> got := Adv.read r ~proc:2);
        step sched 1;
        complete sched 2;
        check_bool "sees write" true (V.equal !got (V.Int 7)));
  ]

(* ----- linearizable mode: the adversary's powers -------------------------------- *)

let lin_tests =
  [
    tc "ops stay pending until stepped again" (fun () ->
        let sched, r = mk Adv.Linearizable in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        step sched 1;
        check_int "pending" 1 (List.length (Adv.pending r));
        step sched 1;
        check_int "committed" 1 (List.length (Adv.committed_ids r)));
    tc "pending_of_proc finds the op" (fun () ->
        let sched, r = mk Adv.Linearizable in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        step sched 1;
        check_bool "found" true (Adv.pending_of_proc r ~proc:1 <> None);
        check_bool "other" true (Adv.pending_of_proc r ~proc:2 = None));
    tc "retroactive insertion before a committed write" (fun () ->
        (* the Theorem-6 move: a pending write linearized before one that
           already completed *)
        let sched, r = mk Adv.Linearizable in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        Sched.spawn sched ~pid:2 (fun () -> Adv.write r ~proc:2 (V.Int 2));
        step sched 1;
        step sched 2;
        (* both invoked; complete p1's write *)
        step sched 1;
        let w1 = Option.get (Adv.pending_of_proc r ~proc:2) in
        Adv.commit r ~op_id:w1 ~pos:0;
        complete sched 2;
        (* final value is p1's write: p2's was linearized before it *)
        check_bool "value" true (V.equal (Adv.current_value r) (V.Int 1));
        Alcotest.(check (list int)) "order" [ w1 ]
          (List.filter (fun id -> id = w1) (Adv.committed_ids r));
        check_int "pos" 0 (Option.get (Adv.position_of r ~op_id:w1)));
    tc "insertion cannot violate real-time precedence" (fun () ->
        let sched, r = mk Adv.Linearizable in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        complete sched 1;
        (* p2 invokes strictly after p1 completed *)
        Sched.spawn sched ~pid:2 (fun () -> Adv.write r ~proc:2 (V.Int 2));
        step sched 2;
        let w2 = Option.get (Adv.pending_of_proc r ~proc:2) in
        (try
           Adv.commit r ~op_id:w2 ~pos:0;
           Alcotest.fail "violated real-time order"
         with Adv.Illegal _ -> ());
        complete sched 2);
    tc "insertion cannot change a linearized read's value" (fun () ->
        let sched, r = mk Adv.Linearizable in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        Sched.spawn sched ~pid:2 (fun () -> ignore (Adv.read r ~proc:2));
        Sched.spawn sched ~pid:3 (fun () -> Adv.write r ~proc:3 (V.Int 3));
        step sched 1;
        step sched 2;
        step sched 3;
        (* commit+respond p1's write, then the read (sees 1) *)
        complete sched 1;
        complete sched 2;
        (* now inserting p3's write between them must be refused *)
        let w3 = Option.get (Adv.pending_of_proc r ~proc:3) in
        (try
           Adv.commit r ~op_id:w3 ~pos:1;
           Alcotest.fail "changed a read's observed value"
         with Adv.Illegal _ -> ());
        (* inserting before BOTH is fine: the read still sees w1 *)
        Adv.commit r ~op_id:w3 ~pos:0;
        check_bool "value still w1's" true
          (V.equal (Adv.current_value r) (V.Int 1));
        complete sched 3);
    tc "double commit is refused" (fun () ->
        let sched, r = mk Adv.Linearizable in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        step sched 1;
        let w = Option.get (Adv.pending_of_proc r ~proc:1) in
        Adv.commit_end r ~op_id:w;
        (try
           Adv.commit_end r ~op_id:w;
           Alcotest.fail "double commit"
         with Adv.Illegal _ -> ());
        complete sched 1);
    tc "unknown op commit is refused" (fun () ->
        let _, r = mk Adv.Linearizable in
        try
          Adv.commit_end r ~op_id:99;
          Alcotest.fail "unknown op"
        with Adv.Illegal _ -> ());
    tc "read captures value at its linearization point" (fun () ->
        let sched, r = mk Adv.Linearizable in
        let got = ref V.Bot in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        Sched.spawn sched ~pid:2 (fun () -> got := Adv.read r ~proc:2);
        step sched 2 (* read invoked first *);
        step sched 1 (* write invoked *);
        complete sched 1 (* write commits+responds *);
        (* commit the read BEFORE the write: it must see the initial value *)
        let rd = Option.get (Adv.pending_of_proc r ~proc:2) in
        Adv.commit r ~op_id:rd ~pos:0;
        complete sched 2;
        check_bool "initial" true (V.equal !got (V.Int 0)));
    tc "commit log shows retroactive write edits" (fun () ->
        let sched, r = mk Adv.Linearizable in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        Sched.spawn sched ~pid:2 (fun () -> Adv.write r ~proc:2 (V.Int 2));
        step sched 1;
        step sched 2;
        complete sched 1;
        let w2 = Option.get (Adv.pending_of_proc r ~proc:2) in
        Adv.commit r ~op_id:w2 ~pos:0;
        complete sched 2;
        match Adv.write_commit_log r with
        | [ (_, first); (_, second) ] ->
            check_int "first snapshot" 1 (List.length first);
            check_int "second snapshot" 2 (List.length second);
            (* the previously-committed write is no longer first: the write
               sequence was NOT extended monotonically *)
            check_bool "not a prefix" false
              (List.hd first = List.hd second)
        | _ -> Alcotest.fail "expected two write commits");
  ]

(* ----- write-strong mode --------------------------------------------------------- *)

let ws_tests =
  [
    tc "writes may only be appended" (fun () ->
        let sched, r = mk Adv.Write_strong in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        Sched.spawn sched ~pid:2 (fun () -> Adv.write r ~proc:2 (V.Int 2));
        step sched 1;
        step sched 2;
        complete sched 1;
        let w2 = Option.get (Adv.pending_of_proc r ~proc:2) in
        (try
           Adv.commit r ~op_id:w2 ~pos:0;
           Alcotest.fail "WSL mode allowed write insertion"
         with Adv.Illegal _ -> ());
        Adv.commit_end r ~op_id:w2;
        complete sched 2);
    tc "reads may still be inserted retroactively" (fun () ->
        let sched, r = mk Adv.Write_strong in
        let got = ref V.Bot in
        Sched.spawn sched ~pid:1 (fun () -> Adv.write r ~proc:1 (V.Int 1));
        Sched.spawn sched ~pid:2 (fun () -> got := Adv.read r ~proc:2);
        step sched 2;
        step sched 1;
        complete sched 1;
        let rd = Option.get (Adv.pending_of_proc r ~proc:2) in
        Adv.commit r ~op_id:rd ~pos:0;
        complete sched 2;
        check_bool "initial value" true (V.equal !got (V.Int 0)));
    tc "write commit log is monotone (property P)" (fun () ->
        let sched, r = mk Adv.Write_strong in
        for pid = 1 to 3 do
          Sched.spawn sched ~pid (fun () ->
              Adv.write r ~proc:pid (V.Int pid);
              Adv.write r ~proc:pid (V.Int (10 + pid)))
        done;
        let rng = Core.Rng.create 17L in
        ignore (Sched.run sched ~policy:(Sched.random_policy rng) ~max_steps:500);
        let log = List.map snd (Adv.write_commit_log r) in
        let rec is_prefix p q =
          match (p, q) with
          | [], _ -> true
          | _, [] -> false
          | x :: p', y :: q' -> x = y && is_prefix p' q'
        in
        let rec chain = function
          | a :: (b :: _ as rest) -> is_prefix a b && chain rest
          | _ -> true
        in
        check_bool "monotone" true (chain log));
  ]

(* ----- every mode produces linearizable histories -------------------------------- *)

let random_workload mode seed =
  let sched = Sched.create ~seed () in
  let r = Adv.create ~sched ~name:"R" ~init:(V.Int 0) ~mode in
  let next = ref 100 in
  for pid = 1 to 3 do
    Sched.spawn sched ~pid (fun () ->
        for k = 1 to 3 do
          if (pid + k) mod 2 = 0 then begin
            incr next;
            Adv.write r ~proc:pid (V.Int !next)
          end
          else ignore (Adv.read r ~proc:pid)
        done)
  done;
  let rng = Core.Rng.create (Int64.add seed 77L) in
  ignore (Sched.run sched ~policy:(Sched.random_policy rng) ~max_steps:2000);
  (history sched, Adv.linearization r)

let witness_tests =
  let prop mode name =
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name ~count:40
         (QCheck.make QCheck.Gen.(map Int64.of_int (int_bound 10_000)))
         (fun seed ->
           let h, wit = random_workload mode seed in
           Hist.Seq.is_linearization_of ~init:(V.Int 0) h wit
           && Core.Lincheck.check ~init:(V.Int 0) h))
  in
  [
    prop Adv.Atomic "atomic runs: committed seq is a valid linearization";
    prop Adv.Write_strong "WSL runs: committed seq is a valid linearization";
    prop Adv.Linearizable "linearizable runs: committed seq is a valid linearization";
  ]

let suite =
  [
    ("adv_register.atomic", atomic_tests);
    ("adv_register.linearizable", lin_tests);
    ("adv_register.write_strong", ws_tests);
    ("adv_register.witness", witness_tests);
  ]
