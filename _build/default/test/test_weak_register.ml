(* Tests for safe/regular registers (Lamport's hierarchy below
   linearizability) and the chaos adversary. *)

module V = Core.Value
module Weak = Registers.Weak_register
module Sched = Core.Sched
module Hist = Core.Hist

let tc name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mk mode =
  let sched = Sched.create ~seed:5L () in
  let r =
    Weak.create ~sched ~name:"R" ~writer:1 ~init:(V.Int 0) ~mode
  in
  (sched, r)

let step sched pid = ignore (Sched.step sched ~pid)

let run_out sched pid =
  let fuel = ref 20 in
  while Sched.runnable sched ~pid && !fuel > 0 do
    decr fuel;
    step sched pid
  done

let weak_tests =
  [
    tc "quiet read returns last written value (both modes)" (fun () ->
        List.iter
          (fun mode ->
            let sched, r = mk mode in
            let got = ref V.Bot in
            Sched.spawn sched ~pid:1 (fun () ->
                Weak.write r ~proc:1 (V.Int 9);
                got := Weak.read r ~proc:1);
            run_out sched 1;
            check_bool "value" true (V.equal !got (V.Int 9)))
          [ Weak.Safe; Weak.Regular ]);
    tc "non-writer writes rejected" (fun () ->
        let sched, r = mk Weak.Regular in
        let rejected = ref false in
        Sched.spawn sched ~pid:2 (fun () ->
            try Weak.write r ~proc:2 (V.Int 1)
            with Invalid_argument _ -> rejected := true);
        run_out sched 2;
        check_bool "rejected" true !rejected);
    tc "regular: overlapping read may return old or new" (fun () ->
        let sched, r = mk Weak.Regular in
        Sched.spawn sched ~pid:1 (fun () -> Weak.write r ~proc:1 (V.Int 1));
        Sched.spawn sched ~pid:2 (fun () -> ignore (Weak.read r ~proc:2));
        step sched 1 (* write invoked, in progress *);
        step sched 2 (* read invoked, overlapping *);
        let op_id, _ = List.hd (Weak.pending_reads r) in
        let legal = Weak.legal_values r ~op_id in
        check_bool "old legal" true (List.exists (V.equal (V.Int 0)) legal);
        check_bool "new legal" true (List.exists (V.equal (V.Int 1)) legal);
        check_int "nothing else" 2 (List.length legal));
    tc "regular: quiet read has exactly one legal value" (fun () ->
        let sched, r = mk Weak.Regular in
        Sched.spawn sched ~pid:1 (fun () -> Weak.write r ~proc:1 (V.Int 1));
        run_out sched 1;
        Sched.spawn sched ~pid:2 (fun () -> ignore (Weak.read r ~proc:2));
        step sched 2;
        let op_id, _ = List.hd (Weak.pending_reads r) in
        Alcotest.(check (list string))
          "only the new value"
          [ "1" ]
          (List.map V.to_string (Weak.legal_values r ~op_id)));
    tc "regular: resolving to an illegal value is refused" (fun () ->
        let sched, r = mk Weak.Regular in
        Sched.spawn sched ~pid:2 (fun () -> ignore (Weak.read r ~proc:2));
        step sched 2;
        let op_id, _ = List.hd (Weak.pending_reads r) in
        try
          Weak.resolve_read r ~op_id ~value:(V.Int 77);
          Alcotest.fail "accepted an illegal value"
        with Invalid_argument _ -> ());
    tc "safe: overlapping read may return anything ever written" (fun () ->
        let sched, r = mk Weak.Safe in
        Sched.spawn sched ~pid:1 (fun () ->
            Weak.write r ~proc:1 (V.Int 1);
            Weak.write r ~proc:1 (V.Int 2));
        run_out sched 1;
        (* start a third write and overlap a read with it *)
        Sched.spawn sched ~pid:3 (fun () -> Weak.write r ~proc:1 (V.Int 3));
        step sched 3;
        Sched.spawn sched ~pid:2 (fun () -> ignore (Weak.read r ~proc:2));
        step sched 2;
        let op_id, _ = List.hd (Weak.pending_reads r) in
        let legal = Weak.legal_values r ~op_id in
        (* 0 (init), 1, 2, 3 all legal under Safe *)
        List.iter
          (fun v ->
            check_bool (V.to_string v) true (List.exists (V.equal v) legal))
          [ V.Int 0; V.Int 1; V.Int 2; V.Int 3 ]);
    tc "regular admits new-old inversion; linearizability forbids it"
      (fun () ->
        (* two sequential reads overlap one write; resolve the first to the
           NEW value and the second to the OLD one — legal for a regular
           register, and the recorded history fails the exact
           linearizability checker *)
        let sched, r = mk Weak.Regular in
        Sched.spawn sched ~pid:1 (fun () -> Weak.write r ~proc:1 (V.Int 1));
        Sched.spawn sched ~pid:2 (fun () ->
            ignore (Weak.read r ~proc:2);
            ignore (Weak.read r ~proc:2));
        step sched 1 (* write in progress, stays so *);
        step sched 2 (* read 1 invoked *);
        let rd1, _ = List.hd (Weak.pending_reads r) in
        Weak.resolve_read r ~op_id:rd1 ~value:(V.Int 1) (* NEW *);
        step sched 2 (* read 1 responds; read 2 invoked *);
        let rd2, _ = List.hd (Weak.pending_reads r) in
        Weak.resolve_read r ~op_id:rd2 ~value:(V.Int 0) (* OLD *);
        step sched 2 (* read 2 responds *);
        run_out sched 2;
        run_out sched 1;
        let h = Core.Trace.history (Sched.trace sched) in
        check_bool "NOT linearizable" false
          (Core.Lincheck.check ~init:(V.Int 0) h));
  ]

(* ----- chaos adversary -------------------------------------------------------- *)

let chaos_prop mode name =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:25
       (QCheck.make ~print:Int64.to_string
          QCheck.Gen.(map Int64.of_int (int_bound 1_000_000)))
       (fun seed ->
         let o = Scenarios.Chaos.run ~mode ~n_procs:3 ~ops_per_proc:3 ~seed in
         Core.Hist.Seq.is_linearization_of ~init:(V.Int 0) o.Scenarios.Chaos.history
           o.Scenarios.Chaos.witness
         && Core.Lincheck.check ~init:(V.Int 0) o.Scenarios.Chaos.history))

let chaos_tests =
  [
    chaos_prop Core.Adv_register.Linearizable
      "chaos(linearizable): every reachable history is linearizable";
    chaos_prop Core.Adv_register.Write_strong
      "chaos(write-strong): every reachable history is linearizable";
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"chaos(write-strong): write order stays append-only" ~count:25
         (QCheck.make ~print:Int64.to_string
            QCheck.Gen.(map Int64.of_int (int_bound 1_000_000)))
         (fun seed ->
           let o =
             Scenarios.Chaos.run ~mode:Core.Adv_register.Write_strong
               ~n_procs:3 ~ops_per_proc:3 ~seed
           in
           let rec is_prefix p q =
             match (p, q) with
             | [], _ -> true
             | _, [] -> false
             | x :: p', y :: q' -> x = y && is_prefix p' q'
           in
           let rec monotone = function
             | a :: (b :: _ as rest) -> is_prefix a b && monotone rest
             | _ -> true
           in
           monotone (List.map snd o.Scenarios.Chaos.commit_log)));
    tc "chaos attempts edits and some get refused" (fun () ->
        (* sanity: the adversary actually exercises the legality checks *)
        let total_attempted = ref 0 and total_refused = ref 0 in
        for seed = 1 to 20 do
          let o =
            Scenarios.Chaos.run ~mode:Core.Adv_register.Write_strong ~n_procs:3
              ~ops_per_proc:3 ~seed:(Int64.of_int (seed * 97))
          in
          total_attempted := !total_attempted + o.Scenarios.Chaos.attempted_edits;
          total_refused := !total_refused + o.Scenarios.Chaos.refused_edits
        done;
        check_bool "attempted" true (!total_attempted > 0);
        check_bool "some refused" true (!total_refused > 0));
  ]

(* ----- subset-strong (§7) ------------------------------------------------------- *)

module T = Core.Treecheck
module Op = Core.Op

let op ?responded ?result ~id ~proc ~kind ~invoked () =
  Op.make ~id ~proc ~obj:"R" ~kind ~invoked ?responded ?result ()

let w ?responded ~id ~proc ~invoked v =
  op ~id ~proc ~kind:(Op.Write (V.Int v)) ~invoked ?responded ()

let r ~id ~proc ~invoked ~responded v =
  op ~id ~proc ~kind:Op.Read ~invoked ~responded ~result:(V.Int v) ()

let subset_tests =
  [
    tc "sel=is_write coincides with write_strong" (fun () ->
        let f4 = Core.Scenario.fig4 () in
        let init = V.Int 0 in
        check_bool "same verdict" true
          (T.subset_strong ~init ~sel:Op.is_write f4.Core.Scenario.tree
          = T.write_strong ~init f4.Core.Scenario.tree));
    tc "sel=never is plain per-node linearizability" (fun () ->
        let f4 = Core.Scenario.fig4 () in
        check_bool "accepts fig4 tree" true
          (T.subset_strong ~init:(V.Int 0) ~sel:(fun _ -> false)
             f4.Core.Scenario.tree));
    tc "fig4 tree IS read-strong (its reads are leaf-only)" (fun () ->
        let f4 = Core.Scenario.fig4 () in
        check_bool "read_strong" true
          (T.read_strong ~init:(V.Int 0) f4.Core.Scenario.tree));
    tc "read-strong refuted when a pending read's position must flip"
      (fun () ->
        (* mirror image of the write-strong refutation: a complete read
           sandwiched by two resolutions of a concurrent read *)
        let wo = w ~id:1 ~proc:1 ~invoked:1 ~responded:4 100 in
        let rd = op ~id:2 ~proc:2 ~kind:Op.Read ~invoked:2 () in
        let r0 = r ~id:3 ~proc:3 ~invoked:5 ~responded:6 100 in
        let g = Hist.of_ops [ wo; rd; r0 ] in
        let h1 =
          Hist.of_ops
            [ wo; { rd with responded = Some 8; result = Some (V.Int 0) }; r0 ]
        in
        let w2 = w ~id:4 ~proc:1 ~invoked:7 ~responded:9 200 in
        let h2 =
          Hist.of_ops
            [
              wo;
              { rd with responded = Some 10; result = Some (V.Int 200) };
              r0;
              w2;
            ]
        in
        (* In H1, rd returns the initial value, so it linearizes before wo
           and hence before r0: read order (rd, r0).  In H2, rd returns
           w2's value and r0 completed before w2 began, so the read order
           is (r0, rd).  f(G)'s read order must contain the complete r0
           and be a prefix of both (rd, r0) and (r0, rd) — impossible.
           The write order, by contrast, only ever grows: [wo] then
           [wo, w2]. *)
        let tree = T.node g [ T.node h1 []; T.node h2 [] ] in
        check_bool "read_strong refuted" false
          (T.read_strong ~init:(V.Int 0) tree);
        check_bool "but write_strong fine" true
          (T.write_strong ~init:(V.Int 0) tree));
  ]

let suite =
  [
    ("weak_register", weak_tests);
    ("chaos", chaos_tests);
    ("subset_strong", subset_tests);
  ]
