(* Theorem 13's counterexample (Figure 4), mechanically verified.

   Algorithm 4 (Lamport-clock MWMR register) is linearizable but NOT
   write strongly-linearizable: there is a history G with two extensions
   H1, H2 such that any linearization of G commits a write order that one
   of the extensions contradicts.  We replay the exact executions from
   the paper and let the history-tree checker certify that no write
   strong-linearization function exists.

     dune exec examples/counterexample_demo.exe
*)

let () =
  let f4 = Core.Scenario.fig4 () in
  print_endline "=== G: w1 (by p1) stalled mid-write; w2 (by p2) complete ===";
  print_string (Core.Timeline.render f4.g);
  print_endline "\n=== H1 = G; w1 completes; p3 reads -> sees w2's value ===";
  print_string (Core.Timeline.render f4.h1);
  print_endline "    (forces w1 BEFORE w2 in any linearization of H1)";
  print_endline "\n=== H2 = G; w3 intervenes; w1 completes; p3 reads -> sees w1 ===";
  print_string (Core.Timeline.render f4.h2);
  print_endline "    (forces w2 BEFORE w1 in any linearization of H2)";
  print_endline "";
  Printf.printf "every history linearizable on its own:        %b\n"
    f4.all_linearizable;
  Printf.printf "each single chain G<=H admits a WSL function:  %b\n" f4.chains_ok;
  Printf.printf "tree {G -> H1, H2} admits a WSL function:      %b  <- Theorem 13\n"
    (not f4.wsl_impossible);

  print_endline "";
  print_endline "=== Contrast: Algorithm 2 orders concurrent writes on-line (Fig 3) ===";
  let f3 = Core.Scenario.fig3 () in
  Printf.printf
    "at w2's completion (t=%d) Algorithm 3 had already committed: [%s]\n"
    f3.t_w2
    (String.concat "; " (List.map string_of_int f3.ws_at_t));
  Printf.printf "final write order (w3, w2, w1): [%s]\n"
    (String.concat "; " (List.map string_of_int f3.final_ws))
