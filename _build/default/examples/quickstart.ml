(* Quickstart: build a write strongly-linearizable MWMR register out of
   SWMR registers (the paper's Algorithm 2), run a small concurrent
   workload against it under a random scheduler, and watch Algorithm 3
   produce — on-line — the write strong-linearization the paper promises.

     dune exec examples/quickstart.exe
*)

let () =
  (* A deterministic scheduler: the "asynchronous adversary" of the model.
     Every run with the same seed is identical. *)
  let sched = Core.Sched.create ~seed:2024L () in

  (* Algorithm 2: a MWMR register for 3 processes, built from 3 atomic
     SWMR registers Val[1..3], write strongly-linearizable. *)
  let r = Core.wsl_mwmr sched ~name:"R" ~n:3 ~init:0 in

  (* Three processes: two writers racing, one reader polling. *)
  Core.Sched.spawn sched ~pid:1 (fun () ->
      Core.Wsl_register.write r ~proc:1 111;
      Core.Wsl_register.write r ~proc:1 112);
  Core.Sched.spawn sched ~pid:2 (fun () ->
      Core.Wsl_register.write r ~proc:2 221;
      ignore (Core.Wsl_register.read r ~proc:2));
  Core.Sched.spawn sched ~pid:3 (fun () ->
      ignore (Core.Wsl_register.read r ~proc:3);
      ignore (Core.Wsl_register.read r ~proc:3));

  (* Drive everything with a seeded random scheduler. *)
  let rng = Core.Rng.create 99L in
  ignore
    (Core.Sched.run sched ~policy:(Core.Sched.random_policy rng) ~max_steps:500);

  (* The recorded history of R (invocations/responses only). *)
  let h = Core.Trace.history (Core.Sched.trace sched) in
  print_endline "History of R (one line per process, time left to right):";
  print_string (Core.Timeline.render h);

  (* Is it linearizable?  (It must be - Theorem 10.) *)
  Printf.printf "\nlinearizable: %b\n"
    (Core.is_linearizable ~init:(Core.Value.Int 0) h);

  (* Algorithm 3 computes the linearization *on-line*: its write order at
     any prefix of the run is a prefix of the final write order. *)
  let s = Core.Wsl_function.linearize (Core.Sched.trace sched) ~obj:"R" in
  print_endline "\nAlgorithm 3's write strong-linearization of this run:";
  List.iter (fun o -> Format.printf "  %a@." Core.Op.pp o) s;
  Printf.printf "\nwitness valid (Definition 2): %b\n"
    (Core.Hist.Seq.is_linearization_of ~init:(Core.Value.Int 0) h s)
