examples/counterexample_demo.ml: Core List Printf String
