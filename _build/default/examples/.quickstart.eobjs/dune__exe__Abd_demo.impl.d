examples/abd_demo.ml: Core List Printf String
