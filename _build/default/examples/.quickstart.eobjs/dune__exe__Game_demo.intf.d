examples/game_demo.mli:
