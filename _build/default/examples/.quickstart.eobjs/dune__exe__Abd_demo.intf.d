examples/abd_demo.mli:
