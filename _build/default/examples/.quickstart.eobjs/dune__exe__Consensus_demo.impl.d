examples/consensus_demo.ml: Core List Printf
