examples/quickstart.mli:
