examples/hierarchy_demo.ml: Core List Printf
