examples/game_demo.ml: Core Format List Printf
