(* The register hierarchy, end to end.

   The same tiny concurrent scenario is played against registers at every
   rung of the hierarchy the paper discusses (plus Lamport's rungs below
   it), each time letting an adversary do its worst within the rung's
   rules; the recorded histories are then fed to the exact checkers:

     safe  ≺  regular  ≺  linearizable  ≺  write strongly-linearizable
           ≺  (strongly linearizable)  ≺  atomic

   - safe/regular: the adversary resolves overlapping reads maliciously;
     the history can fail plain linearizability (new-old inversion);
   - linearizable: the chaos adversary inserts operations retroactively;
     every history passes the linearizability checker, but the write
     order is edited after the fact — exactly what breaks Algorithm 1;
   - write strongly-linearizable: same chaos, but the write commit log is
     append-only;
   - atomic: every operation takes effect at invocation.

     dune exec examples/hierarchy_demo.exe
*)

let check_lin h = Core.is_linearizable ~init:(Core.Value.Int 0) h

let monotone log =
  let rec is_prefix p q =
    match (p, q) with
    | [], _ -> true
    | _, [] -> false
    | x :: p', y :: q' -> x = y && is_prefix p' q'
  in
  let rec go = function
    | a :: (b :: _ as rest) -> is_prefix a b && go rest
    | _ -> true
  in
  go (List.map snd log)

let () =
  (* --- regular: force a new-old inversion ------------------------------ *)
  let sched = Core.Sched.create ~seed:5L () in
  let weak =
    Core.Weak_register.create ~sched ~name:"R" ~writer:1
      ~init:(Core.Value.Int 0) ~mode:Core.Weak_register.Regular
  in
  Core.Sched.spawn sched ~pid:1 (fun () ->
      Core.Weak_register.write weak ~proc:1 (Core.Value.Int 1));
  Core.Sched.spawn sched ~pid:2 (fun () ->
      ignore (Core.Weak_register.read weak ~proc:2);
      ignore (Core.Weak_register.read weak ~proc:2));
  ignore (Core.Sched.step sched ~pid:1) (* write begins, stays in progress *);
  ignore (Core.Sched.step sched ~pid:2);
  let rd1, _ = List.hd (Core.Weak_register.pending_reads weak) in
  Core.Weak_register.resolve_read weak ~op_id:rd1 ~value:(Core.Value.Int 1);
  ignore (Core.Sched.step sched ~pid:2);
  let rd2, _ = List.hd (Core.Weak_register.pending_reads weak) in
  Core.Weak_register.resolve_read weak ~op_id:rd2 ~value:(Core.Value.Int 0);
  let run_out pid =
    while Core.Sched.runnable sched ~pid do
      ignore (Core.Sched.step sched ~pid)
    done
  in
  run_out 2;
  run_out 1;
  let h = Core.Trace.history (Core.Sched.trace sched) in
  print_endline "REGULAR register, adversarial read resolution:";
  print_string (Core.Timeline.render h);
  Printf.printf "  linearizable? %b   (new-old inversion is legal here)\n\n"
    (check_lin h);

  (* --- linearizable and write-strong: chaos adversary ------------------- *)
  List.iter
    (fun (label, mode) ->
      let o = Core.Scenario.Chaos.run ~mode ~n_procs:3 ~ops_per_proc:3 ~seed:42L in
      Printf.printf "%s register, chaos adversary (%d edits tried, %d refused):\n"
        label o.Core.Scenario.Chaos.attempted_edits
        o.Core.Scenario.Chaos.refused_edits;
      Printf.printf "  linearizable? %b   write order append-only? %b\n\n"
        (check_lin o.Core.Scenario.Chaos.history)
        (monotone o.Core.Scenario.Chaos.commit_log))
    [
      ("LINEARIZABLE", Core.Adv_register.Linearizable);
      ("WRITE STRONGLY-LINEARIZABLE", Core.Adv_register.Write_strong);
    ];

  (* --- atomic ------------------------------------------------------------ *)
  let o =
    Core.Scenario.Chaos.run ~mode:Core.Adv_register.Atomic ~n_procs:3
      ~ops_per_proc:3 ~seed:42L
  in
  Printf.printf "ATOMIC register (no adversary power at all):\n";
  Printf.printf "  linearizable? %b   write order append-only? %b\n"
    (check_lin o.Core.Scenario.Chaos.history)
    (monotone o.Core.Scenario.Chaos.commit_log);
  print_endline
    "\nThe game of Algorithm 1 separates the middle rungs: it terminates on\n\
     the write strongly-linearizable rung and not on the linearizable one\n\
     (see game_demo.exe)."
