(* Corollary 9, live: 𝒜′ = "run Algorithm 1; then run randomized
   consensus".  The register mode of the three gate registers decides
   whether the whole algorithm terminates:

   - Linearizable + Theorem-6 adversary: the gate never opens; consensus
     never executes a single step.
   - Write strongly-linearizable + the same adversary: the gate opens
     almost surely; everyone decides, agreement and validity hold.

     dune exec examples/consensus_demo.exe
*)

let pp_outcome (o : Core.Cor9.outcome) =
  Printf.printf "  gate max round: %d, game terminated: %b\n"
    o.game.Core.Game_alg1.max_round o.game.Core.Game_alg1.terminated;
  let decided =
    List.filter (fun (_, d) -> d <> None) o.consensus.Core.Rand_consensus.decisions
  in
  Printf.printf "  consensus: %d/%d processes decided" (List.length decided)
    (List.length o.consensus.Core.Rand_consensus.decisions);
  (match decided with
  | (_, Some v) :: _ -> Printf.printf " (value %d)" v
  | _ -> ());
  Printf.printf "; agreement=%b validity=%b\n"
    o.consensus.Core.Rand_consensus.agreed o.consensus.Core.Rand_consensus.valid

let () =
  let cfg =
    { Core.Cor9.n = 5; gate_rounds = 30; consensus_max_rounds = 300; seed = 7L }
  in
  print_endline "=== A' with LINEARIZABLE gate registers (Theorem-6 adversary) ===";
  let blocked = Core.Cor9.run_blocked { cfg with gate_rounds = 25 } in
  Printf.printf "  blocked forever: %b\n" blocked.blocked;
  pp_outcome blocked;

  print_endline "";
  print_endline "=== A' with WRITE STRONGLY-LINEARIZABLE gate registers ===";
  List.iter
    (fun seed ->
      let live = Core.Cor9.run_live { cfg with seed } ~inputs:(fun pid -> pid mod 2) in
      Printf.printf "seed %Ld:\n" seed;
      pp_outcome live)
    [ 1L; 2L; 3L ]
