(** Multicore (Domain + Atomic) ports of the paper's two MWMR register
    constructions.  The base SWMR registers become [Atomic.t] cells —
    OCaml guarantees their reads and writes are atomic and sequentially
    consistent, which is (more than) the atomic-register assumption the
    paper makes of the [Val[-]] array.

    Both ports record their high-level histories in an {!Mclog}, which the
    stress harness checks with the exact linearizability decision
    procedure. *)

module Alg2 : sig
  (** Vector-timestamp MWMR register (write strongly-linearizable). *)

  type t

  val create : log:Mclog.t -> name:string -> n:int -> init:int -> t
  val write : t -> proc:int -> int -> unit
  val read : t -> proc:int -> int
end

module Alg4 : sig
  (** Lamport-timestamp MWMR register (linearizable). *)

  type t

  val create : log:Mclog.t -> name:string -> n:int -> init:int -> t
  val write : t -> proc:int -> int -> unit
  val read : t -> proc:int -> int
end

module Stress : sig
  type report = {
    history : History.Hist.t;
    ops : int;
    linearizable : bool option;
        (** [None] when the history is too large for the exact checker *)
  }

  val run :
    impl:[ `Alg2 | `Alg4 ] ->
    domains:int ->
    ops_per_domain:int ->
    ?check:bool ->
    unit ->
    report
  (** Spawn [domains] domains, each performing a deterministic mix of
      reads and distinct-valued writes, join them, and (optionally,
      default true) decide linearizability of the recorded history. *)
end
