lib/multicore/mclog.mli: History
