lib/multicore/mc_registers.ml: Array Atomic Domain History Int Linchk List Mclog
