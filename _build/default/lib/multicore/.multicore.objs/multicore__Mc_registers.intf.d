lib/multicore/mc_registers.mli: History Mclog
