lib/multicore/mclog.ml: Atomic History Int List
