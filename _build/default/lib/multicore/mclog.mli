(** Concurrent history log for the multicore ports of Algorithms 2 and 4.

    Real domains cannot be scheduled adversarially, so the multicore layer
    serves a different purpose than the simulator: it shows the register
    constructions are not simulator artifacts.  Each operation stamps its
    invocation and response with a global [Atomic] counter; because the
    invocation stamp is taken before the operation's first shared access
    and the response stamp after its last, the recorded intervals contain
    the operations' effect windows, so linearizability of the recorded
    history is implied by linearizability of the actual execution — and a
    violation found in the recorded history is a real violation. *)

type t

val create : unit -> t

val invoke : t -> proc:int -> obj:string -> kind:History.Op.kind -> int
(** Thread-safe; returns the fresh op id. *)

val respond : t -> op_id:int -> result:History.Value.t option -> unit

val history : t -> History.Hist.t
(** Call only after all domains have joined. *)
