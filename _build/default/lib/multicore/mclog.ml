type t = {
  stamp : int Atomic.t;
  ops : int Atomic.t;
  items : History.Event.timed list Atomic.t;
}

let create () =
  { stamp = Atomic.make 1; ops = Atomic.make 0; items = Atomic.make [] }

let rec push t e =
  let cur = Atomic.get t.items in
  if not (Atomic.compare_and_set t.items cur (e :: cur)) then push t e

let invoke t ~proc ~obj ~kind =
  let op_id = Atomic.fetch_and_add t.ops 1 + 1 in
  let time = Atomic.fetch_and_add t.stamp 1 in
  push t
    {
      History.Event.time;
      event = History.Event.Invoke { op_id; proc; obj; kind };
    };
  op_id

let respond t ~op_id ~result =
  let time = Atomic.fetch_and_add t.stamp 1 in
  push t { History.Event.time; event = History.Event.Respond { op_id; result } }

let history t =
  Atomic.get t.items
  |> List.sort (fun a b -> Int.compare a.History.Event.time b.History.Event.time)
  |> History.Hist.of_events_exn
