module Sched = Simkit.Sched
module Rng = Simkit.Rng

type cfg = { n : int; max_rounds : int; seed : int64 }

type result = {
  decisions : (int * int option) list;
  agreed : bool;
  valid : bool;
  rounds_used : int;
}

type instance = {
  sched : Sched.t;
  cfg : cfg;
  instances : (int, Commit_adopt.t) Hashtbl.t; (* round -> CA instance *)
  decided : (int, int) Hashtbl.t; (* proc -> decision *)
  inputs_seen : (int, int) Hashtbl.t;
  mutable decision_reg : int option; (* shared decision register *)
  mutable max_round_used : int;
}

let make ~sched cfg =
  if cfg.n < 1 then invalid_arg "Rand_consensus.make: n must be >= 1";
  {
    sched;
    cfg;
    instances = Hashtbl.create 16;
    decided = Hashtbl.create 16;
    inputs_seen = Hashtbl.create 16;
    decision_reg = None;
    max_round_used = 0;
  }

let instance_for t r =
  match Hashtbl.find_opt t.instances r with
  | Some ca -> ca
  | None ->
      let ca =
        Commit_adopt.create ~sched:t.sched
          ~name:(Printf.sprintf "CA%d" r)
          ~n:t.cfg.n
      in
      Hashtbl.add t.instances r ca;
      ca

(* read the shared decision register: one atomic step *)
let read_decision t =
  Simkit.Fiber.yield ();
  t.decision_reg

let write_decision t v =
  Simkit.Fiber.yield ();
  (match t.decision_reg with
  | Some d when d <> v ->
      (* commit–adopt makes this impossible; fail loudly if it ever isn't *)
      invalid_arg "Rand_consensus: conflicting decisions"
  | _ -> ());
  t.decision_reg <- Some v

let body t ~proc ~input =
  Hashtbl.replace t.inputs_seen proc input;
  let rng = Rng.create (Int64.add t.cfg.seed (Int64.of_int (proc * 1299721))) in
  let v = ref input in
  let r = ref 0 in
  let out = ref None in
  while !out = None && !r < t.cfg.max_rounds do
    match read_decision t with
    | Some d -> out := Some d
    | None -> (
        incr r;
        if !r > t.max_round_used then t.max_round_used <- !r;
        let ca = instance_for t !r in
        match Commit_adopt.propose ca ~proc !v with
        | Commit_adopt.Commit w ->
            write_decision t w;
            out := Some w
        | Commit_adopt.Adopt w -> v := w
        | Commit_adopt.Flip -> v := Rng.coin rng)
  done;
  match !out with
  | Some d -> Hashtbl.replace t.decided proc d
  | None -> () (* round cap reached without a decision *)

let results t =
  let decisions =
    List.init t.cfg.n (fun i ->
        let proc = i + 1 in
        (proc, Hashtbl.find_opt t.decided proc))
  in
  let values = List.filter_map snd decisions in
  let agreed =
    match values with
    | [] -> true
    | v :: rest -> List.for_all (fun u -> u = v) rest
  in
  let inputs = Hashtbl.fold (fun _ v acc -> v :: acc) t.inputs_seen [] in
  let valid = List.for_all (fun v -> List.mem v inputs) values in
  { decisions; agreed; valid; rounds_used = t.max_round_used }

let spawn ~sched cfg ~inputs ?(pid_of = fun p -> p) () =
  let t = make ~sched cfg in
  for proc = 1 to cfg.n do
    Sched.spawn sched ~pid:(pid_of proc) (fun () ->
        body t ~proc ~input:(inputs proc))
  done;
  fun () -> results t

let run_random cfg ~inputs =
  let sched = Sched.create ~seed:cfg.seed () in
  let collect = spawn ~sched cfg ~inputs () in
  let rng = Rng.create (Int64.logxor cfg.seed 0x2545F491L) in
  ignore
    (Sched.run sched
       ~policy:(Sched.random_policy rng)
       ~max_steps:(cfg.n * cfg.max_rounds * cfg.n * 40));
  collect ()
