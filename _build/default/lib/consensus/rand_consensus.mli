(** Randomized binary consensus from shared registers: the task 𝒜 of the
    Corollary 9 construction.

    The algorithm is the classic "commit–adopt + local coin" loop:
    each round runs a fresh {!Commit_adopt} instance; a [Commit]
    decides (and publishes the decision so laggards stop), an [Adopt]
    carries the adopted value forward, and a [Flip] draws a fresh local
    coin.  Safety — agreement and (binary) validity — is unconditional,
    inherited from commit–adopt; the tests assert it on every schedule.
    Termination holds with probability 1 under the randomized and
    round-robin schedulers used here (once every undecided process flips
    the same value in some round, the next round commits); the paper's
    Corollary 9 only requires {e some} randomized algorithm solving a
    task with probability-1 termination, which this supplies. *)

type cfg = {
  n : int;  (** processes 1…n *)
  max_rounds : int;  (** safety cap for the test harness *)
  seed : int64;
}

type result = {
  decisions : (int * int option) list;  (** proc → decided value *)
  agreed : bool;  (** all decided values equal *)
  valid : bool;  (** decided value is some process's input *)
  rounds_used : int;
}

val spawn :
  sched:Simkit.Sched.t ->
  cfg ->
  inputs:(int -> int) ->
  ?pid_of:(int -> int) ->
  unit ->
  unit -> result
(** Register the n consensus fibers with the scheduler (fiber pids default
    to the process index 1…n; [pid_of] remaps them).  The returned thunk
    collects results once the caller has driven the scheduler. *)

val run_random : cfg -> inputs:(int -> int) -> result
(** Convenience: spawn and drive with a seeded random scheduler. *)

(** {2 Composition (used by {!Cor9})} *)

type instance

val make : sched:Simkit.Sched.t -> cfg -> instance

val body : instance -> proc:int -> input:int -> unit
(** The per-process consensus code, callable from inside any fiber —
    this is what runs after the Algorithm 1 gate in 𝒜′. *)

val results : instance -> result
