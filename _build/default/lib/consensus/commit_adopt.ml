module Swmr = Registers.Swmr

type verdict = Commit of int | Adopt of int | Flip

type t = {
  n : int;
  a : int option Swmr.t array; (* first-round announcements *)
  b : (bool * int) option Swmr.t array; (* (clean, value) *)
}

let create ~sched ~name ~n =
  ignore sched;
  if n < 1 then invalid_arg "Commit_adopt.create: n must be >= 1";
  {
    n;
    a =
      Array.init n (fun i ->
          Swmr.create ~writer:(i + 1)
            ~name:(Printf.sprintf "%s.A[%d]" name (i + 1))
            None);
    b =
      Array.init n (fun i ->
          Swmr.create ~writer:(i + 1)
            ~name:(Printf.sprintf "%s.B[%d]" name (i + 1))
            None);
  }

let propose t ~proc v =
  if proc < 1 || proc > t.n then invalid_arg "Commit_adopt.propose: bad proc";
  (* round 1: announce and scan *)
  Swmr.write t.a.(proc - 1) ~proc (Some v);
  let clean = ref true in
  for i = 1 to t.n do
    match Swmr.read t.a.(i - 1) with
    | Some u when u <> v -> clean := false
    | _ -> ()
  done;
  (* round 2: announce cleanliness and scan *)
  Swmr.write t.b.(proc - 1) ~proc (Some (!clean, v));
  let all_clean = ref true in
  let some_clean = ref None in
  let seen_any = ref false in
  for i = 1 to t.n do
    match Swmr.read t.b.(i - 1) with
    | None -> ()
    | Some (c, u) ->
        seen_any := true;
        if c then (if !some_clean = None then some_clean := Some u)
        else all_clean := false;
        if u <> v then all_clean := false
  done;
  ignore !seen_any;
  match (!all_clean, !some_clean) with
  | true, Some w -> Commit w
  | _, Some w -> Adopt w
  | _, None -> Flip
