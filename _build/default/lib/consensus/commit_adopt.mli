(** Wait-free commit–adopt (Gafni 1998) from SWMR registers.

    Commit–adopt is the safety half of the standard randomized-consensus
    recipe "repeat: commit-adopt; coin".  Each process proposes a value
    and obtains a verdict:

    - [Commit v]: the process may decide [v]; every other process is
      guaranteed to obtain [Commit v] or [Adopt v] from the same instance;
    - [Adopt v]: the process must carry [v] into the next round;
    - [Flip]: no constraint — the process may choose its next value
      freely (the consensus loop flips a local coin, which is what makes
      the combined algorithm randomized).

    Two rounds of SWMR announcements implement it:
    + announce the proposal in [A[i]]; scan [A]: if every announced value
      equals yours, mark your second announcement "clean";
    + announce [(clean, v)] in [B[i]]; scan [B]: all clean and equal →
      commit; some clean [w] → adopt [w]; none clean → adopt your own.

    This object is deterministic and wait-free; termination of the
    consensus loop comes from the coin, and its safety from here —
    which is why the tests assert agreement on {e every} schedule,
    adversarial or not. *)

type verdict =
  | Commit of int  (** decide; everyone else gets this value too *)
  | Adopt of int  (** a clean announcement was seen: carry this value *)
  | Flip  (** no clean announcement seen: the caller may randomize *)

type t

val create : sched:Simkit.Sched.t -> name:string -> n:int -> t
(** One instance for processes 1…n (fresh per consensus round). *)

val propose : t -> proc:int -> int -> verdict
(** Run the two announcement rounds.  Must be called at most once per
    process per instance, from that process's fiber. *)
