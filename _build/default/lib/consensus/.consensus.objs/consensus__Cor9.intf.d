lib/consensus/cor9.mli: Game Rand_consensus
