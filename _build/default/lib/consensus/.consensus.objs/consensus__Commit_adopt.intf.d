lib/consensus/commit_adopt.mli: Simkit
