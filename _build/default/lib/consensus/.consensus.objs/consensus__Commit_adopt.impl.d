lib/consensus/commit_adopt.ml: Array Printf Registers
