lib/consensus/cor9.ml: Game Int64 List Option Rand_consensus Registers Simkit
