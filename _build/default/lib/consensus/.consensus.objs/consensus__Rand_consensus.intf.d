lib/consensus/rand_consensus.mli: Simkit
