lib/consensus/rand_consensus.ml: Commit_adopt Hashtbl Int64 List Printf Simkit
