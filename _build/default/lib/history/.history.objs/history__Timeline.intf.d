lib/history/timeline.pp.mli: Hist Op
