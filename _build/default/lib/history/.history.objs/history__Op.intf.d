lib/history/op.pp.mli: Format Ppx_deriving_runtime Value
