lib/history/gen.pp.ml: Event Format Hashtbl Hist List Op QCheck Value
