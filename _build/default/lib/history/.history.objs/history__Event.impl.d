lib/history/event.pp.ml: Format Op Ppx_deriving_runtime Value
