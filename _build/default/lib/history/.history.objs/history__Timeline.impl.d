lib/history/timeline.pp.ml: Buffer Bytes Format Hist Int List Op Printf String Value
