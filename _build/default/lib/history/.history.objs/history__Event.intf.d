lib/history/event.pp.mli: Format Op Ppx_deriving_runtime Value
