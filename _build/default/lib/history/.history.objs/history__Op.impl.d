lib/history/op.pp.ml: Format Int Option Ppx_deriving_runtime Value
