lib/history/value.pp.ml: Clocks Format Ppx_deriving_runtime
