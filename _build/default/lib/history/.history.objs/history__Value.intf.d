lib/history/value.pp.mli: Clocks Format Ppx_deriving_runtime
