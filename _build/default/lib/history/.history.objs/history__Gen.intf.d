lib/history/gen.pp.mli: Hist Op QCheck Value
