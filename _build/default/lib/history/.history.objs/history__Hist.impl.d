lib/history/hist.pp.ml: Array Event Format Hashtbl Int List Op Option Printf String Value
