lib/history/hist.pp.mli: Event Format Op Value
