(** ASCII rendering of histories as per-process timelines, in the style of
    the paper's Figures 1–4.  Each operation is drawn as an interval
    [|--- label ---|] on its process's line, positioned by invocation and
    response times. *)

val render : ?width:int -> Hist.t -> string
(** [render h] draws one line per process.  [width] bounds the number of
    columns used for the time axis (default 100); times are scaled to fit. *)

val render_ops : ?width:int -> Op.t list -> string
(** Render a list of operations directly (pending ops extend to the right
    margin). *)
