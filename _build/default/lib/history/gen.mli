(** QCheck generators of register histories, used by the property-based
    tests of the linearizability checkers.

    Two families:
    - {!atomic_history} produces histories that are linearizable {e by
      construction} (they are recorded from a simulated run over an atomic
      register, so the identity order is a witness);
    - {!arbitrary_history} produces well-formed but otherwise unconstrained
      histories (reads return arbitrary previously-written-or-initial
      values), which may or may not be linearizable — useful for
      differential testing of the decision procedures. *)

type spec = {
  n_procs : int;
  n_ops : int;
  obj : string;
  init : Value.t;
  distinct_writes : bool;
      (** when true, every write carries a fresh value — the regime in
          which the paper's algorithms operate (Observation 24) *)
}

val default_spec : spec

val atomic_history : spec -> Hist.t QCheck.Gen.t
(** Linearizable by construction; the generator also guarantees at least
    one write when [n_ops > 1]. *)

val atomic_history_with_witness : spec -> (Hist.t * Op.t list) QCheck.Gen.t
(** Same, returning the linearization order used during generation. *)

val arbitrary_history : spec -> Hist.t QCheck.Gen.t

val arb_atomic : spec -> Hist.t QCheck.arbitrary
val arb_arbitrary : spec -> Hist.t QCheck.arbitrary
