type spec = {
  n_procs : int;
  n_ops : int;
  obj : string;
  init : Value.t;
  distinct_writes : bool;
}

let default_spec =
  { n_procs = 3; n_ops = 8; obj = "R"; init = Value.Int 0; distinct_writes = true }

(* A tiny explicit simulation: operations are invoked, linearized (taking
   effect on a register value), and responded, in a random legal order.
   The recorded event sequence is linearizable by construction and the
   linearization order is returned as a witness. *)

type sim_op = {
  mutable o : Op.t;
  mutable linearized : bool;
  mutable lin_result : Value.t option; (* captured at linearization *)
}

let atomic_history_with_witness spec : (Hist.t * Op.t list) QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let n_procs = max 1 spec.n_procs and n_ops = max 1 spec.n_ops in
  let time = ref 0 in
  let next_time () =
    incr time;
    !time
  in
  let next_id = ref 0 in
  let next_val = ref 0 in
  let fresh_value () =
    incr next_val;
    if spec.distinct_writes then Value.Int (100 + !next_val)
    else Value.Int (int_bound 2 st)
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  let value = ref spec.init in
  let witness = ref [] in
  let pending : (int, sim_op) Hashtbl.t = Hashtbl.create 8 in
  (* proc -> its pending op *)
  let invoked = ref 0 in
  let steps_left = ref (n_ops * 6) in
  while (!invoked < n_ops || Hashtbl.length pending > 0) && !steps_left > 0 do
    decr steps_left;
    let idle_procs =
      List.filter
        (fun p -> not (Hashtbl.mem pending p))
        (List.init n_procs (fun i -> i + 1))
    in
    let can_invoke = !invoked < n_ops && idle_procs <> [] in
    let lin_candidates =
      Hashtbl.fold
        (fun _ so acc -> if not so.linearized then so :: acc else acc)
        pending []
    in
    let resp_candidates =
      Hashtbl.fold
        (fun _ so acc -> if so.linearized then so :: acc else acc)
        pending []
    in
    let choices =
      (if can_invoke then [ `Invoke ] else [])
      @ (if lin_candidates <> [] then [ `Linearize ] else [])
      @ if resp_candidates <> [] then [ `Respond ] else []
    in
    match choices with
    | [] -> steps_left := 0
    | _ -> (
        match List.nth choices (int_bound (List.length choices - 1) st) with
        | `Invoke ->
            let p = List.nth idle_procs (int_bound (List.length idle_procs - 1) st) in
            let kind =
              if bool st then Op.Read else Op.Write (fresh_value ())
            in
            incr next_id;
            let id = !next_id in
            let t = next_time () in
            emit
              {
                Event.time = t;
                event = Event.Invoke { op_id = id; proc = p; obj = spec.obj; kind };
              };
            incr invoked;
            Hashtbl.add pending p
              {
                o = Op.make ~id ~proc:p ~obj:spec.obj ~kind ~invoked:t ();
                linearized = false;
                lin_result = None;
              }
        | `Linearize ->
            let so =
              List.nth lin_candidates (int_bound (List.length lin_candidates - 1) st)
            in
            so.linearized <- true;
            (match so.o.kind with
            | Op.Write v -> value := v
            | Op.Read -> so.lin_result <- Some !value);
            witness := so :: !witness
        | `Respond ->
            let so =
              List.nth resp_candidates (int_bound (List.length resp_candidates - 1) st)
            in
            let t = next_time () in
            let result =
              match so.o.kind with Op.Read -> so.lin_result | Op.Write _ -> None
            in
            emit { Event.time = t; event = Event.Respond { op_id = so.o.id; result } };
            so.o <- { so.o with responded = Some t; result };
            Hashtbl.remove pending so.o.proc)
  done;
  let h = Hist.of_events_exn (List.rev !events) in
  (* Witness: all linearized writes + responded reads, in linearization
     order; linearized-but-pending reads are dropped (Definition 2 allows
     omitting non-completed operations). *)
  let wit =
    List.rev !witness
    |> List.filter_map (fun so ->
           match so.o.kind with
           | Op.Write _ -> Some so.o
           | Op.Read -> if Op.is_complete so.o then Some so.o else None)
  in
  (h, wit)

let atomic_history spec = QCheck.Gen.map fst (atomic_history_with_witness spec)

let arbitrary_history spec : Hist.t QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let n_procs = max 1 spec.n_procs and n_ops = max 1 spec.n_ops in
  let time = ref 0 in
  let next_time () =
    incr time;
    !time
  in
  let next_id = ref 0 in
  let next_val = ref 0 in
  let written = ref [ spec.init ] in
  let events = ref [] in
  let pending : (int, Op.kind * int) Hashtbl.t = Hashtbl.create 8 in
  let invoked = ref 0 in
  let steps = (n_ops * 4) + 4 in
  for _ = 1 to steps do
    let idle_procs =
      List.filter
        (fun p -> not (Hashtbl.mem pending p))
        (List.init n_procs (fun i -> i + 1))
    in
    let can_invoke = !invoked < n_ops && idle_procs <> [] in
    let can_respond = Hashtbl.length pending > 0 in
    let do_invoke =
      if can_invoke && can_respond then bool st else can_invoke
    in
    if do_invoke then begin
      let p = List.nth idle_procs (int_bound (List.length idle_procs - 1) st) in
      let kind =
        if bool st then Op.Read
        else begin
          incr next_val;
          let v =
            if spec.distinct_writes then Value.Int (100 + !next_val)
            else Value.Int (int_bound 2 st)
          in
          written := v :: !written;
          Op.Write v
        end
      in
      incr next_id;
      let id = !next_id in
      events :=
        {
          Event.time = next_time ();
          event = Event.Invoke { op_id = id; proc = p; obj = spec.obj; kind };
        }
        :: !events;
      incr invoked;
      Hashtbl.add pending p (kind, id)
    end
    else if can_respond then begin
      let procs = Hashtbl.fold (fun p _ acc -> p :: acc) pending [] in
      let p = List.nth procs (int_bound (List.length procs - 1) st) in
      let kind, id = Hashtbl.find pending p in
      let result =
        match kind with
        | Op.Write _ -> None
        | Op.Read ->
            let ws = !written in
            Some (List.nth ws (int_bound (List.length ws - 1) st))
      in
      events :=
        { Event.time = next_time (); event = Event.Respond { op_id = id; result } }
        :: !events;
      Hashtbl.remove pending p
    end
  done;
  Hist.of_events_exn (List.rev !events)

let print_hist h = Format.asprintf "%a" Hist.pp h
let arb_atomic spec = QCheck.make ~print:print_hist (atomic_history spec)
let arb_arbitrary spec = QCheck.make ~print:print_hist (arbitrary_history spec)
