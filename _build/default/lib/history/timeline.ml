let label (o : Op.t) =
  match o.kind with
  | Op.Write v -> Format.asprintf "w(%a)" Value.pp v
  | Op.Read -> (
      match o.result with
      | Some v -> Format.asprintf "r->%a" Value.pp v
      | None -> "r")

let render_ops ?(width = 100) ops =
  match ops with
  | [] -> "(empty history)\n"
  | _ ->
      let procs =
        List.sort_uniq Int.compare (List.map (fun (o : Op.t) -> o.proc) ops)
      in
      let tmin =
        List.fold_left (fun a (o : Op.t) -> min a o.invoked) max_int ops
      in
      let tmax =
        List.fold_left
          (fun a (o : Op.t) ->
            match o.responded with Some r -> max a r | None -> a)
          (tmin + 1) ops
      in
      let tmax = max tmax (tmin + 1) in
      let cols = max 20 (min width 160) in
      let scale t =
        (t - tmin) * (cols - 1) / (max 1 (tmax - tmin))
      in
      let buf = Buffer.create 1024 in
      List.iter
        (fun p ->
          let line = Bytes.make (cols + 14) ' ' in
          let prefix = Printf.sprintf "p%-3d " p in
          Bytes.blit_string prefix 0 line 0 (String.length prefix);
          let base = String.length prefix in
          List.iter
            (fun (o : Op.t) ->
              if o.proc = p then begin
                let a = base + scale o.invoked in
                let b =
                  match o.responded with
                  | Some r -> base + scale r
                  | None -> base + cols - 1
                in
                let b = max b (a + 1) in
                if a < Bytes.length line then Bytes.set line a '|';
                for i = a + 1 to min (b - 1) (Bytes.length line - 1) do
                  Bytes.set line i '-'
                done;
                if b < Bytes.length line then
                  Bytes.set line b
                    (match o.responded with Some _ -> '|' | None -> '>');
                (* overlay the label centred in the interval *)
                let lbl = label o in
                let lbl_len = String.length lbl in
                let mid = (a + b) / 2 - (lbl_len / 2) in
                let mid = max (a + 1) mid in
                String.iteri
                  (fun i c ->
                    let pos = mid + i in
                    if pos > a && pos < b && pos < Bytes.length line then
                      Bytes.set line pos c)
                  lbl
              end)
            ops;
          Buffer.add_string buf (Bytes.to_string line);
          Buffer.add_char buf '\n')
        procs;
      Buffer.contents buf

let render ?width h = render_ops ?width (Hist.ops h)
