type t = { evs : Event.timed list (* increasing time *) }

let empty = { evs = [] }
let events h = h.evs
let length h = List.length h.evs

let max_time h =
  match List.rev h.evs with [] -> -1 | { Event.time; _ } :: _ -> time

(* Validation -------------------------------------------------------------- *)

exception Malformed of string

let validate evs =
  let seen_ids = Hashtbl.create 16 in
  (* op_id -> (proc, obj, kind) of its invocation *)
  let pending_by_proc = Hashtbl.create 16 in
  (* proc -> op_id currently pending *)
  let last_time = ref min_int in
  List.iter
    (fun { Event.time; event } ->
      if time <= !last_time then
        raise (Malformed "event times must be strictly increasing");
      last_time := time;
      match event with
      | Event.Invoke { op_id; proc; _ } ->
          if Hashtbl.mem seen_ids op_id then
            raise (Malformed "duplicate op id");
          Hashtbl.add seen_ids op_id `Open;
          if Hashtbl.mem pending_by_proc proc then
            raise
              (Malformed
                 (Printf.sprintf
                    "process %d invokes while an operation is pending" proc));
          Hashtbl.add pending_by_proc proc op_id
      | Event.Respond { op_id; _ } -> (
          match Hashtbl.find_opt seen_ids op_id with
          | None -> raise (Malformed "response without invocation")
          | Some `Closed -> raise (Malformed "duplicate response")
          | Some `Open ->
              Hashtbl.replace seen_ids op_id `Closed;
              let proc =
                Hashtbl.fold
                  (fun p id acc -> if id = op_id then Some p else acc)
                  pending_by_proc None
              in
              (match proc with
              | Some p -> Hashtbl.remove pending_by_proc p
              | None -> raise (Malformed "response for a non-pending op"))))
    evs

let of_events evs =
  match validate evs with
  | () -> Ok { evs }
  | exception Malformed msg -> Error msg

let of_events_exn evs =
  match of_events evs with
  | Ok h -> h
  | Error msg -> invalid_arg ("Hist.of_events_exn: " ^ msg)

let of_ops ops =
  let evs =
    List.concat_map
      (fun (o : Op.t) ->
        let inv =
          {
            Event.time = o.invoked;
            event =
              Event.Invoke
                { op_id = o.id; proc = o.proc; obj = o.obj; kind = o.kind };
          }
        in
        match o.responded with
        | None -> [ inv ]
        | Some r ->
            [
              inv;
              {
                Event.time = r;
                event = Event.Respond { op_id = o.id; result = o.result };
              };
            ])
      ops
  in
  let evs =
    List.sort (fun a b -> Int.compare a.Event.time b.Event.time) evs
  in
  of_events_exn evs

(* Derived views ----------------------------------------------------------- *)

let ops h =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun { Event.time; event } ->
      match event with
      | Event.Invoke { op_id; proc; obj; kind } ->
          Hashtbl.add tbl op_id
            (Op.make ~id:op_id ~proc ~obj ~kind ~invoked:time ());
          order := op_id :: !order
      | Event.Respond { op_id; result } ->
          let o = Hashtbl.find tbl op_id in
          Hashtbl.replace tbl op_id
            { o with responded = Some time; result })
    h.evs;
  List.rev_map (fun id -> Hashtbl.find tbl id) !order

let find_op h id = List.find_opt (fun (o : Op.t) -> o.id = id) (ops h)
let complete_ops h = List.filter Op.is_complete (ops h)
let pending_ops h = List.filter Op.is_pending (ops h)

let objects h =
  List.fold_left
    (fun acc { Event.event; _ } ->
      match event with
      | Event.Invoke { obj; _ } when not (List.mem obj acc) -> obj :: acc
      | _ -> acc)
    [] h.evs
  |> List.rev

let project h ~obj =
  let keep = Hashtbl.create 16 in
  let evs =
    List.filter
      (fun { Event.event; _ } ->
        match event with
        | Event.Invoke { op_id; obj = o; _ } ->
            let k = String.equal o obj in
            if k then Hashtbl.add keep op_id ();
            k
        | Event.Respond { op_id; _ } -> Hashtbl.mem keep op_id)
      h.evs
  in
  { evs }

let restrict_procs h ~procs =
  let keep = Hashtbl.create 16 in
  let evs =
    List.filter
      (fun { Event.event; _ } ->
        match event with
        | Event.Invoke { op_id; proc; _ } ->
            let k = List.mem proc procs in
            if k then Hashtbl.add keep op_id ();
            k
        | Event.Respond { op_id; _ } -> Hashtbl.mem keep op_id)
      h.evs
  in
  { evs }

let prefix h k =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: xs -> x :: take (k - 1) xs
  in
  { evs = take k h.evs }

let prefixes h =
  let n = length h in
  List.init (n + 1) (fun k -> prefix h k)

let is_prefix g ~of_ =
  let rec go gs hs =
    match (gs, hs) with
    | [], _ -> true
    | _, [] -> false
    | ge :: gs', he :: hs' -> Event.equal_timed ge he && go gs' hs'
  in
  go g.evs of_.evs

let append h ev =
  match of_events (h.evs @ [ ev ]) with
  | Ok h' -> h'
  | Error msg -> invalid_arg ("Hist.append: " ^ msg)

let writes h = List.filter Op.is_write (ops h)
let reads h = List.filter Op.is_read (ops h)

let concurrent_pairs h =
  let os = Array.of_list (ops h) in
  let n = Array.length os in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Op.concurrent os.(i) os.(j) then acc := (os.(i), os.(j)) :: !acc
    done
  done;
  List.rev !acc

let pp fmt h =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list Event.pp_timed)
    h.evs

(* Sequential histories ----------------------------------------------------- *)

module Seq = struct
  type seq = Op.t list

  let first_illegal_read ~init s =
    let rec go current = function
      | [] -> None
      | (o : Op.t) :: rest -> (
          match o.kind with
          | Op.Write v -> go v rest
          | Op.Read -> (
              match o.result with
              | Some r when Value.equal r current -> go current rest
              | _ -> Some o))
    in
    go init s

  let legal_register ~init s = Option.is_none (first_illegal_read ~init s)

  let respects_precedence h s =
    let pos = Hashtbl.create 16 in
    List.iteri (fun i (o : Op.t) -> Hashtbl.replace pos o.id i) s;
    let all = ops h in
    List.for_all
      (fun (a : Op.t) ->
        List.for_all
          (fun (b : Op.t) ->
            if Op.precedes a b then
              match (Hashtbl.find_opt pos a.id, Hashtbl.find_opt pos b.id) with
              | Some ia, Some ib -> ia < ib
              | _ ->
                  (* if either is absent from the sequence the property is
                     vacuous for this pair (only complete ops are required
                     to be present, and [covers_complete] checks that) *)
                  true
            else true)
          all)
      all

  let covers_complete h s =
    let ids = List.map (fun (o : Op.t) -> o.id) s in
    List.for_all
      (fun (o : Op.t) -> List.mem o.id ids)
      (complete_ops h)

  let is_linearization_of ~init h s =
    (* every op in s must belong to h *)
    let h_ids = List.map (fun (o : Op.t) -> o.id) (ops h) in
    List.for_all (fun (o : Op.t) -> List.mem o.id h_ids) s
    && covers_complete h s
    && respects_precedence h s
    && legal_register ~init s

  let write_subsequence s = List.filter Op.is_write s

  let is_op_prefix p ~of_ =
    let rec go ps qs =
      match (ps, qs) with
      | [], _ -> true
      | _, [] -> false
      | (a : Op.t) :: ps', (b : Op.t) :: qs' -> a.id = b.id && go ps' qs'
    in
    go p of_
end
