(** Invocation/response events.  A history (in the sense of Herlihy–Wing) is
    a finite sequence of these, each tagged with the scheduler step at which
    it occurred. *)

type t =
  | Invoke of { op_id : int; proc : int; obj : string; kind : Op.kind }
  | Respond of { op_id : int; result : Value.t option }
[@@deriving eq]

type timed = { time : int; event : t } [@@deriving eq]

val op_id : t -> int
val is_invoke : t -> bool
val is_respond : t -> bool
val pp : Format.formatter -> t -> unit
val pp_timed : Format.formatter -> timed -> unit
