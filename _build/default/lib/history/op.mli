(** Register operations: an invocation/response interval plus its payload.

    An operation [o] {e precedes} [o'] (Definition 1 of the paper) when the
    response of [o] occurs before the invocation of [o']; two operations
    neither of which precedes the other are {e concurrent}. *)

type kind = Read | Write of Value.t [@@deriving eq, ord]

type t = {
  id : int;  (** unique per history *)
  proc : int;  (** invoking process id (1-based) *)
  obj : string;  (** register name, e.g. ["R1"] *)
  kind : kind;
  invoked : int;  (** invocation time (scheduler step) *)
  responded : int option;  (** response time; [None] while pending *)
  result : Value.t option;
      (** for a complete read, the value returned; [None] otherwise *)
}

val make :
  id:int ->
  proc:int ->
  obj:string ->
  kind:kind ->
  invoked:int ->
  ?responded:int ->
  ?result:Value.t ->
  unit ->
  t

val is_complete : t -> bool
val is_pending : t -> bool
val is_write : t -> bool
val is_read : t -> bool

val write_value : t -> Value.t
(** @raise Invalid_argument if applied to a read. *)

val precedes : t -> t -> bool
(** [precedes o o'] iff [o]'s response occurs before [o']'s invocation
    (Definition 1).  A pending operation precedes nothing. *)

val concurrent : t -> t -> bool
(** Neither precedes the other. *)

val active_at : t -> int -> bool
(** [active_at o t]: the operation has started by time [t] and has not
    responded before [t] (Definition 21 of the paper: an operation that
    starts at [s] and completes at [f] is active at [t] if [s <= t <= f];
    a pending operation is active at every [t >= s]). *)

val equal : t -> t -> bool
(** Equality on [id]. *)

val compare_by_invocation : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
