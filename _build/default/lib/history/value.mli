(** Values held by the registers modelled in this library.

    The paper's algorithms store a small zoo of values in registers:
    [⊥] (Algorithm 1, lines 19–20), pairs [[i, j]] (Algorithm 1, line 3),
    plain integers (register [R2]; coin results in [C]), and
    timestamped payloads (Algorithms 2 and 4).  Rather than parameterize
    every checker over a value type, we use one concrete sum type with
    structural equality — checkers only ever need equality and printing. *)

type t =
  | Bot  (** the paper's [⊥] *)
  | Int of int
  | Pair of int * int  (** the paper's [[i, j]] tuples *)
  | VecStamped of int * Clocks.Vector.t
      (** a value tagged with a vector timestamp (Algorithm 2 payloads) *)
  | LamStamped of int * Clocks.Lamport.t
      (** a value tagged with a Lamport timestamp (Algorithm 4 payloads) *)
[@@deriving eq, ord]

val pp : Format.formatter -> t -> unit
val show : t -> string
val to_string : t -> string

val bot : t
val int : int -> t
val pair : int -> int -> t
