type t =
  | Invoke of { op_id : int; proc : int; obj : string; kind : Op.kind }
  | Respond of { op_id : int; result : Value.t option }
[@@deriving eq]

type timed = { time : int; event : t } [@@deriving eq]

let op_id = function Invoke { op_id; _ } -> op_id | Respond { op_id; _ } -> op_id
let is_invoke = function Invoke _ -> true | Respond _ -> false
let is_respond = function Respond _ -> true | Invoke _ -> false

let pp fmt = function
  | Invoke { op_id; proc; obj; kind } ->
      Format.fprintf fmt "inv(#%d p%d %s.%a)" op_id proc obj Op.pp_kind kind
  | Respond { op_id; result } ->
      Format.fprintf fmt "res(#%d%a)" op_id
        (fun fmt -> function
          | Some v -> Format.fprintf fmt "->%a" Value.pp v
          | None -> ())
        result

let pp_timed fmt { time; event } = Format.fprintf fmt "%d:%a" time pp event
