type t =
  | Bot
  | Int of int
  | Pair of int * int
  | VecStamped of int * (Clocks.Vector.t[@equal Clocks.Vector.equal] [@compare Clocks.Vector.compare] [@printer Clocks.Vector.pp])
  | LamStamped of int * (Clocks.Lamport.t[@equal Clocks.Lamport.equal] [@compare Clocks.Lamport.compare] [@printer Clocks.Lamport.pp])
[@@deriving eq, ord]

let pp fmt = function
  | Bot -> Format.pp_print_string fmt "\u{22A5}"
  | Int n -> Format.pp_print_int fmt n
  | Pair (a, b) -> Format.fprintf fmt "[%d,%d]" a b
  | VecStamped (v, ts) -> Format.fprintf fmt "(%d,%a)" v Clocks.Vector.pp ts
  | LamStamped (v, ts) -> Format.fprintf fmt "(%d,%a)" v Clocks.Lamport.pp ts

let show t = Format.asprintf "%a" pp t
let to_string = show
let bot = Bot
let int n = Int n
let pair a b = Pair (a, b)
