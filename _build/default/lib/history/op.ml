type kind = Read | Write of Value.t [@@deriving eq, ord]

type t = {
  id : int;
  proc : int;
  obj : string;
  kind : kind;
  invoked : int;
  responded : int option;
  result : Value.t option;
}

let make ~id ~proc ~obj ~kind ~invoked ?responded ?result () =
  (match responded with
  | Some r when r < invoked ->
      invalid_arg "Op.make: response before invocation"
  | _ -> ());
  { id; proc; obj; kind; invoked; responded; result }

let is_complete o = Option.is_some o.responded
let is_pending o = Option.is_none o.responded
let is_write o = match o.kind with Write _ -> true | Read -> false
let is_read o = not (is_write o)

let write_value o =
  match o.kind with
  | Write v -> v
  | Read -> invalid_arg "Op.write_value: operation is a read"

let precedes o o' =
  match o.responded with None -> false | Some r -> r < o'.invoked

let concurrent o o' = (not (precedes o o')) && not (precedes o' o)

let active_at o t =
  o.invoked <= t
  && match o.responded with None -> true | Some r -> t <= r

let equal a b = a.id = b.id
let compare_by_invocation a b = Int.compare a.invoked b.invoked

let pp_kind fmt = function
  | Read -> Format.pp_print_string fmt "read"
  | Write v -> Format.fprintf fmt "write(%a)" Value.pp v

let pp fmt o =
  Format.fprintf fmt "@[<h>#%d p%d %s.%a [%d,%s]%a@]" o.id o.proc o.obj
    pp_kind o.kind o.invoked
    (match o.responded with Some r -> string_of_int r | None -> "?")
    (fun fmt -> function
      | Some v -> Format.fprintf fmt "->%a" Value.pp v
      | None -> ())
    o.result
