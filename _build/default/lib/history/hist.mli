(** Histories: well-formed sequences of timed invocation/response events,
    and the derived view as a set of operations.

    Well-formedness:
    - event times are strictly increasing;
    - every response matches an earlier invocation with the same op id;
    - op ids are unique;
    - each process has at most one operation pending at any moment
      (processes are sequential). *)

type t

val empty : t

val of_events : Event.timed list -> (t, string) result
(** Validates well-formedness; returns [Error msg] otherwise. *)

val of_events_exn : Event.timed list -> t
(** @raise Invalid_argument on a malformed event list. *)

val of_ops : Op.t list -> t
(** Build a history from operation records (useful for hand-crafted
    histories such as the paper's Figure 4).  Events are synthesized from
    the operations' [invoked]/[responded] times.
    @raise Invalid_argument if two events collide on the same time. *)

val events : t -> Event.timed list
(** In increasing time order. *)

val ops : t -> Op.t list
(** All operations, in invocation order.  Pending operations have
    [responded = None]. *)

val find_op : t -> int -> Op.t option
val complete_ops : t -> Op.t list
val pending_ops : t -> Op.t list
val objects : t -> string list
(** Distinct object names, in first-appearance order. *)

val project : t -> obj:string -> t
(** Sub-history of events on one object. *)

val restrict_procs : t -> procs:int list -> t
(** Sub-history of events by the given processes. *)

val length : t -> int
(** Number of events. *)

val prefix : t -> int -> t
(** [prefix h k] is the history of the first [k] events. *)

val prefixes : t -> t list
(** All event-boundary prefixes, shortest first, including [empty] and the
    full history.  These are the [G] ⊑ [H] pairs quantified over by
    Definitions 3 and 4 along a single execution. *)

val is_prefix : t -> of_:t -> bool

val append : t -> Event.timed -> t
(** @raise Invalid_argument if the result would be malformed. *)

val concurrent_pairs : t -> (Op.t * Op.t) list
(** All unordered pairs of concurrent operations. *)

val max_time : t -> int
(** Time of the last event; [-1] for the empty history. *)

val writes : t -> Op.t list
(** Write operations in invocation order. *)

val reads : t -> Op.t list

val pp : Format.formatter -> t -> unit
(** One event per line. *)

(** {2 Sequential histories and the register sequential specification} *)

module Seq : sig
  type seq = Op.t list
  (** A sequential history: a list of operations, each considered to take
      effect in list order. *)

  val legal_register : init:Value.t -> seq -> bool
  (** Property 3 of Definition 2: every read returns the value of the last
      write before it in the sequence, or [init] if there is none.
      All operations must be on the same object. *)

  val first_illegal_read : init:Value.t -> seq -> Op.t option
  (** Diagnostic variant: the first read violating the register spec. *)

  val respects_precedence : t -> seq -> bool
  (** Property 2 of Definition 2: if [o] precedes [o'] in the (concurrent)
      history, then [o] occurs before [o'] in the sequence. *)

  val covers_complete : t -> seq -> bool
  (** Property 1 of Definition 2: the sequence contains every complete
      operation of the history (it may also contain pending ones). *)

  val is_linearization_of : init:Value.t -> t -> seq -> bool
  (** Conjunction of the three properties of Definition 2, i.e. the
      sequence witnesses linearizability of the (single-object) history. *)

  val write_subsequence : seq -> Op.t list
  (** The subsequence of write operations — the object of property (P) in
      Definition 4 (write strong-linearizability). *)

  val is_op_prefix : Op.t list -> of_:Op.t list -> bool
  (** Prefix test on operation sequences, comparing by op id. *)
end
