[@@@alert "-unstable"]

open Effect
open Effect.Deep

type _ Effect.t += Yield : unit Effect.t

type status = Runnable | Finished | Failed of exn

type state =
  | Not_started of (unit -> unit)
  | Suspended of (unit, unit) continuation
  | Running  (** sentinel while the fiber occupies the OCaml stack *)
  | Done
  | Dead of exn

type t = { fpid : int; mutable state : state }

let spawn ~pid f = { fpid = pid; state = Not_started f }
let pid t = t.fpid

let status t =
  match t.state with
  | Not_started _ | Suspended _ -> Runnable
  | Done -> Finished
  | Dead e -> Failed e
  | Running -> Runnable

let yield () = perform Yield

let handler t =
  {
    retc = (fun () -> t.state <- Done);
    exnc = (fun e -> t.state <- Dead e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, _) continuation) -> t.state <- Suspended k)
        | _ -> None);
  }

let step t =
  match t.state with
  | Done | Dead _ | Running ->
      invalid_arg "Fiber.step: fiber is not runnable"
  | Not_started f ->
      t.state <- Running;
      match_with f () (handler t);
      status t
  | Suspended k ->
      t.state <- Running;
      continue k ();
      status t

let run_to_completion t ~max_steps =
  let rec go n =
    if n = 0 then status t
    else
      match status t with
      | Runnable ->
          ignore (step t);
          go (n - 1)
      | s -> s
  in
  go max_steps
