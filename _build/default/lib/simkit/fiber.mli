(** Cooperative fibers built on OCaml 5 effect handlers.

    A fiber models one asynchronous process of the paper's system: it runs
    until it performs {!yield}, at which point control returns to the
    scheduler (the adversary), which decides who runs next.  A fiber that
    never yields between two shared-memory accesses would be atomic; the
    register implementations in [lib/registers] yield at every base-object
    access, exposing all the interleavings the adversary may exploit. *)

type t

type status =
  | Runnable  (** can be stepped *)
  | Finished  (** the code returned *)
  | Failed of exn  (** the code raised *)

val spawn : pid:int -> (unit -> unit) -> t
val pid : t -> int
val status : t -> status

val step : t -> status
(** Run the fiber until its next [yield], its return, or an exception.
    Returns the status after the step.
    @raise Invalid_argument when stepping a finished/failed fiber. *)

val yield : unit -> unit
(** To be called from inside fiber code only.  Performing it outside a
    fiber raises [Effect.Unhandled]. *)

val run_to_completion : t -> max_steps:int -> status
(** Step repeatedly (used in tests). *)
