lib/simkit/trace.ml: Clocks Format History List
