lib/simkit/sched.mli: Fiber Rng Trace
