lib/simkit/rng.mli:
