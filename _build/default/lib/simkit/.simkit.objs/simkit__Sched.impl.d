lib/simkit/sched.ml: Fiber Hashtbl Int List Printf Rng Trace
