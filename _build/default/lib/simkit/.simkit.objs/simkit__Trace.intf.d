lib/simkit/trace.mli: Clocks Format History
