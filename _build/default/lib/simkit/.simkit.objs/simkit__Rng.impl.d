lib/simkit/rng.ml: Int64
