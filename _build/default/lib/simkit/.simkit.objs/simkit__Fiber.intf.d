lib/simkit/fiber.mli:
