lib/simkit/fiber.ml: Effect
