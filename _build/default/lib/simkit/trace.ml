type entry =
  | Ev of History.Event.timed
  | Lin of { time : int; op_id : int }
  | Coin of { time : int; proc : int; value : int }
  | ValWrite of { time : int; op_id : int; proc : int; idx : int }
  | TsSnapshot of { time : int; op_id : int; proc : int; ts : Clocks.Vector.t }
  | ReadTs of { time : int; op_id : int; proc : int; ts : Clocks.Vector.t }
  | Note of { time : int; tag : string; text : string }

type t = {
  mutable clock : int;
  mutable rev_entries : entry list;
  mutable next_op : int;
}

let create () = { clock = 0; rev_entries = []; next_op = 0 }
let now t = t.clock

let next_time t =
  t.clock <- t.clock + 1;
  t.clock

let push t e = t.rev_entries <- e :: t.rev_entries

let invoke t ~proc ~obj ~kind =
  t.next_op <- t.next_op + 1;
  let op_id = t.next_op in
  let time = next_time t in
  push t (Ev { History.Event.time; event = History.Event.Invoke { op_id; proc; obj; kind } });
  op_id

let respond t ~op_id ~result =
  let time = next_time t in
  push t (Ev { History.Event.time; event = History.Event.Respond { op_id; result } })

let linearize t ~op_id = push t (Lin { time = next_time t; op_id })
let coin t ~proc ~value = push t (Coin { time = next_time t; proc; value })

let val_write t ~op_id ~proc ~idx =
  push t (ValWrite { time = next_time t; op_id; proc; idx })

let ts_snapshot t ~op_id ~proc ~ts =
  push t (TsSnapshot { time = next_time t; op_id; proc; ts })

let read_ts t ~op_id ~proc ~ts =
  push t (ReadTs { time = next_time t; op_id; proc; ts })

let note t ~tag ~text = push t (Note { time = next_time t; tag; text })
let entries t = List.rev t.rev_entries

let history t =
  entries t
  |> List.filter_map (function Ev e -> Some e | _ -> None)
  |> History.Hist.of_events_exn

let lin_time t ~op_id =
  entries t
  |> List.find_map (function
       | Lin { time; op_id = id } when id = op_id -> Some time
       | _ -> None)

let coins t =
  entries t
  |> List.filter_map (function
       | Coin { time; proc; value } -> Some (time, proc, value)
       | _ -> None)

let entry_time = function
  | Ev { History.Event.time; _ }
  | Lin { time; _ }
  | Coin { time; _ }
  | ValWrite { time; _ }
  | TsSnapshot { time; _ }
  | ReadTs { time; _ }
  | Note { time; _ } ->
      time

let pp_entry fmt = function
  | Ev e -> History.Event.pp_timed fmt e
  | Lin { time; op_id } -> Format.fprintf fmt "%d:lin(#%d)" time op_id
  | Coin { time; proc; value } ->
      Format.fprintf fmt "%d:coin(p%d)=%d" time proc value
  | ValWrite { time; op_id; proc; idx } ->
      Format.fprintf fmt "%d:valwrite(#%d p%d Val[%d])" time op_id proc idx
  | TsSnapshot { time; op_id; proc; ts } ->
      Format.fprintf fmt "%d:ts(#%d p%d %a)" time op_id proc Clocks.Vector.pp ts
  | ReadTs { time; op_id; proc; ts } ->
      Format.fprintf fmt "%d:readts(#%d p%d %a)" time op_id proc Clocks.Vector.pp ts
  | Note { time; tag; text } -> Format.fprintf fmt "%d:%s:%s" time tag text

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]" (Format.pp_print_list pp_entry) (entries t)
