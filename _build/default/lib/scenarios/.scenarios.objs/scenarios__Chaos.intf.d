lib/scenarios/chaos.mli: History Registers
