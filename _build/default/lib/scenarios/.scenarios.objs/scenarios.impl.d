lib/scenarios/scenarios.ml: Chaos History Int64 Linchk List Option Printf Registers Simkit
