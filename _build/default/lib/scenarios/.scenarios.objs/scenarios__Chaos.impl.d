lib/scenarios/chaos.ml: History Int64 List Registers Simkit
