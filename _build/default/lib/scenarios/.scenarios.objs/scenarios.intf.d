lib/scenarios/scenarios.mli: Chaos History Linchk Simkit
