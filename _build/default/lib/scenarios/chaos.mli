(** The chaos adversary: a randomized strong adversary for
    {!Registers.Adv_register} that exercises the full extent of each
    mode's legal-edit envelope.

    At every scheduler decision it randomly either steps a process or
    attempts to commit a random pending operation at a {e random position}
    of the committed sequence.  Illegal attempts (refused by the
    register's legality checks) are simply skipped — so a run both
    stress-tests the legality checker from the outside and produces
    histories far stranger than any deterministic policy would, while
    remaining linearizable by construction.  The property tests verify the
    exact checker accepts every history the chaos adversary can produce,
    and that in [Write_strong] mode the write order additionally evolved
    append-only. *)

type outcome = {
  history : History.Hist.t;
  witness : History.Op.t list;  (** the committed sequence *)
  commit_log : (int * int list) list;
  attempted_edits : int;
  refused_edits : int;  (** attempts the legality checker blocked *)
}

val run :
  mode:Registers.Adv_register.mode ->
  n_procs:int ->
  ops_per_proc:int ->
  seed:int64 ->
  outcome
(** Drive [n_procs] processes, each performing [ops_per_proc] operations
    (distinct-valued writes and reads) against one adversarial register,
    under the chaos adversary, to quiescence. *)
