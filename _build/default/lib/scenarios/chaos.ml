module V = History.Value
module Adv = Registers.Adv_register
module Sched = Simkit.Sched
module Rng = Simkit.Rng

type outcome = {
  history : History.Hist.t;
  witness : History.Op.t list;
  commit_log : (int * int list) list;
  attempted_edits : int;
  refused_edits : int;
}

let run ~mode ~n_procs ~ops_per_proc ~seed =
  if n_procs < 1 then invalid_arg "Chaos.run: n_procs must be >= 1";
  let sched = Sched.create ~seed () in
  let r = Adv.create ~sched ~name:"R" ~init:(V.Int 0) ~mode in
  let next_val = ref 100 in
  for pid = 1 to n_procs do
    Sched.spawn sched ~pid (fun () ->
        for k = 1 to ops_per_proc do
          if (pid + k) mod 2 = 0 then begin
            incr next_val;
            Adv.write r ~proc:pid (V.Int !next_val)
          end
          else ignore (Adv.read r ~proc:pid)
        done)
  done;
  let rng = Rng.create (Int64.logxor seed 0xC0A0C0L) in
  let attempted = ref 0 in
  let refused = ref 0 in
  let max_rounds = n_procs * ops_per_proc * 40 in
  let rounds = ref 0 in
  while Sched.live_pids sched <> [] && !rounds < max_rounds do
    incr rounds;
    let pend = Adv.pending r in
    let do_edit = pend <> [] && mode <> Adv.Atomic && Rng.bool rng in
    if do_edit then begin
      let op_id, _, _ = List.nth pend (Rng.int rng (List.length pend)) in
      let len = List.length (Adv.committed_ids r) in
      let pos = Rng.int rng (len + 1) in
      incr attempted;
      match Adv.commit r ~op_id ~pos with
      | () -> ()
      | exception Adv.Illegal _ -> incr refused
    end
    else begin
      let live = Sched.live_pids sched in
      let pid = List.nth live (Rng.int rng (List.length live)) in
      ignore (Sched.step sched ~pid)
    end
  done;
  {
    history = Simkit.Trace.history (Sched.trace sched);
    witness = Adv.linearization r;
    commit_log = Adv.write_commit_log r;
    attempted_edits = !attempted;
    refused_edits = !refused;
  }
