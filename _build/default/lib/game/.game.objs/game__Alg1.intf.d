lib/game/alg1.mli: Registers Simkit
