lib/game/thm6.ml: Alg1 History Int64 List Option Printf Registers Simkit
