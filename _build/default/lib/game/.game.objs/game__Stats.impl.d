lib/game/stats.ml: Alg1 Array Format Int64 List Registers Stdlib Thm6
