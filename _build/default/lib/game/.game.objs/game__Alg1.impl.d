lib/game/alg1.ml: Array Fun Hashtbl History Int64 List Option Printf Registers Simkit
