lib/game/stats.mli: Alg1 Format
