lib/game/thm6.mli: Alg1 Registers
