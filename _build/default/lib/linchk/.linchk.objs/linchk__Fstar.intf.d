lib/linchk/fstar.mli: History
