lib/linchk/treecheck.mli: History
