lib/linchk/alg3.mli: History Simkit
