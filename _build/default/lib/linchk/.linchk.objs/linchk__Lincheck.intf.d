lib/linchk/lincheck.mli: History
