lib/linchk/fstar.ml: Array History Int List Printf
