lib/linchk/treecheck.ml: History Lincheck List Option
