lib/linchk/lincheck.ml: Array Hashtbl History List Option Printf
