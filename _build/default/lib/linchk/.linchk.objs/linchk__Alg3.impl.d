lib/linchk/alg3.ml: Clocks Hashtbl History Int List Option Printf Simkit String
