type entry = Fin of int | Inf

type t = entry array
(* Invariant: length >= 1; all finite entries are >= 0. *)

let dim v = Array.length v

let all_inf n =
  if n < 1 then invalid_arg "Vector.all_inf: dimension must be >= 1";
  Array.make n Inf

let zero n =
  if n < 1 then invalid_arg "Vector.zero: dimension must be >= 1";
  Array.make n (Fin 0)

let check_entry = function
  | Fin x when x < 0 -> invalid_arg "Vector: negative component"
  | _ -> ()

let of_list = function
  | [] -> invalid_arg "Vector.of_list: empty"
  | l ->
      List.iter check_entry l;
      Array.of_list l

let of_ints l = of_list (List.map (fun x -> Fin x) l)

let get v i =
  if i < 1 || i > Array.length v then invalid_arg "Vector.get: index";
  v.(i - 1)

let entry_compare a b =
  match (a, b) with
  | Inf, Inf -> 0
  | Inf, Fin _ -> 1
  | Fin _, Inf -> -1
  | Fin x, Fin y -> Int.compare x y

let set v i x =
  if i < 1 || i > Array.length v then invalid_arg "Vector.set: index";
  if x < 0 then invalid_arg "Vector.set: negative component";
  (match v.(i - 1) with
  | Inf -> ()
  | Fin old ->
      if x > old then
        invalid_arg "Vector.set: components may only decrease from Inf");
  let v' = Array.copy v in
  v'.(i - 1) <- Fin x;
  v'

let compare a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Vector.compare: dimension mismatch";
  let rec go i =
    if i = n then 0
    else
      match entry_compare a.(i) b.(i) with 0 -> go (i + 1) | c -> c
  in
  go 0

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0

let max_list = function
  | [] -> invalid_arg "Vector.max_list: empty list"
  | x :: xs -> List.fold_left (fun acc v -> if compare v acc > 0 then v else acc) x xs

let is_complete v = Array.for_all (function Fin _ -> true | Inf -> false) v
let is_zero v = Array.for_all (function Fin 0 -> true | _ -> false) v

let componentwise_le a b =
  let n = Array.length a in
  if n <> Array.length b then
    invalid_arg "Vector.componentwise_le: dimension mismatch";
  let ok = ref true in
  for i = 0 to n - 1 do
    if entry_compare a.(i) b.(i) > 0 then ok := false
  done;
  !ok

let to_list = Array.to_list

let pp_entry fmt = function
  | Inf -> Format.pp_print_string fmt "\u{221E}"
  | Fin x -> Format.pp_print_int fmt x

let pp fmt v =
  Format.fprintf fmt "[@[<h>%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       pp_entry)
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v
