(** Vector timestamps with possibly-unset (infinite) components, as used by
    Algorithm 2 of the paper (the write strongly-linearizable MWMR register
    construction from SWMR registers).

    A write operation builds its timestamp incrementally, one component at a
    time, starting from [[∞, …, ∞]].  Because components only ever decrease
    (from [∞] to a finite value), the vector as a whole is non-increasing in
    lexicographic order while it is being formed — this is the key property
    (Observation 25 of the paper) that lets Algorithm 3 linearize write
    operations on-line from their possibly-incomplete timestamps. *)

type entry = Fin of int | Inf
(** One component: either a finite count or [∞] (not yet determined). *)

type t
(** A vector timestamp of fixed dimension [n] (one entry per process). *)

val dim : t -> int

val all_inf : int -> t
(** [all_inf n] is [[∞, …, ∞]] of dimension [n]: the initial value of the
    local [new_ts] variable (and its value after the reset on line 9 of
    Algorithm 2). @raise Invalid_argument if [n < 1]. *)

val zero : int -> t
(** [zero n] is [[0, …, 0]]: the timestamp of the register's initial value. *)

val of_list : entry list -> t
(** @raise Invalid_argument on an empty list or a negative finite entry. *)

val of_ints : int list -> t
(** All-finite vector from a list of ints. *)

val get : t -> int -> entry
(** [get v i] is component [i] (1-based, matching the paper's indexing).
    @raise Invalid_argument if [i] is out of range. *)

val set : t -> int -> int -> t
(** [set v i x] is [v] with component [i] (1-based) set to [Fin x].
    Functional update; the original is unchanged.
    @raise Invalid_argument if out of range, [x < 0], or if the update would
    *increase* the component (components may only go from [Inf] to finite —
    a violation indicates a bug in the caller). *)

val entry_compare : entry -> entry -> int
(** [Inf] is strictly greater than every finite value; finite values compare
    as integers. *)

val compare : t -> t -> int
(** Lexicographic comparison, component 1 first.
    @raise Invalid_argument on dimension mismatch. *)

val equal : t -> t -> bool
val lt : t -> t -> bool
val le : t -> t -> bool

val max_list : t list -> t
(** Lexicographic maximum. @raise Invalid_argument on the empty list. *)

val is_complete : t -> bool
(** True iff no component is [∞]. *)

val is_zero : t -> bool
(** True iff equal to [zero (dim v)]. *)

val componentwise_le : t -> t -> bool
(** [componentwise_le a b] iff every component of [a] is [<=] the matching
    component of [b] (with [Inf] as top).  Used in tests of the paper's
    Lemma 37 / Claim 38.1 style arguments. *)

val to_list : t -> entry list
val pp : Format.formatter -> t -> unit
val to_string : t -> string
