(** Lamport timestamps [⟨sq, pid⟩] as used by Algorithm 4 of the paper
    (a linearizable — but not write strongly-linearizable — MWMR register
    construction from SWMR registers).

    A timestamp pairs a sequence number [sq] with the id [pid] of the process
    that created it.  Timestamps are compared lexicographically: first by
    sequence number, then by process id.  This yields a total order
    (Observation: distinct writes by distinct processes always compare
    unequal, because their [pid]s differ). *)

type t = private { sq : int; pid : int }
(** A Lamport timestamp.  [sq >= 0] and [pid >= 1] by construction. *)

val make : sq:int -> pid:int -> t
(** [make ~sq ~pid] builds a timestamp.
    @raise Invalid_argument if [sq < 0] or [pid < 1]. *)

val initial : pid:int -> t
(** [initial ~pid] is [⟨0, pid⟩], the timestamp stored in [Val[pid]] at
    initialization time (line "initialized to (0, ⟨0,i⟩)" of Algorithm 4). *)

val bump : max_sq:int -> pid:int -> t
(** [bump ~max_sq ~pid] is [⟨max_sq + 1, pid⟩] — the new timestamp formed on
    line 4–5 of Algorithm 4 after reading a maximum sequence number
    [max_sq] from the [Val[-]] registers. *)

val compare : t -> t -> int
(** Lexicographic comparison: by [sq], then by [pid]. *)

val equal : t -> t -> bool

val lt : t -> t -> bool
(** [lt a b] iff [a] is strictly smaller than [b] lexicographically. *)

val le : t -> t -> bool

val max : t -> t -> t
(** Lexicographic maximum. *)

val max_list : t list -> t
(** @raise Invalid_argument on the empty list. *)

val is_initial : t -> bool
(** [is_initial ts] iff [ts.sq = 0]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
