type t = { sq : int; pid : int }

let make ~sq ~pid =
  if sq < 0 then invalid_arg "Lamport.make: negative sequence number";
  if pid < 1 then invalid_arg "Lamport.make: pid must be >= 1";
  { sq; pid }

let initial ~pid = make ~sq:0 ~pid
let bump ~max_sq ~pid = make ~sq:(max_sq + 1) ~pid

let compare a b =
  match Int.compare a.sq b.sq with 0 -> Int.compare a.pid b.pid | c -> c

let equal a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let max a b = if compare a b >= 0 then a else b

let max_list = function
  | [] -> invalid_arg "Lamport.max_list: empty list"
  | x :: xs -> List.fold_left max x xs

let is_initial ts = ts.sq = 0
let pp fmt ts = Format.fprintf fmt "@[<h>\u{27E8}%d,%d\u{27E9}@]" ts.sq ts.pid
let to_string ts = Format.asprintf "%a" pp ts
