lib/clocks/vector.mli: Format
