lib/clocks/vector.ml: Array Format Int List
