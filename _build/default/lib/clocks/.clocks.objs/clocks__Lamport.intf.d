lib/clocks/lamport.mli: Format
