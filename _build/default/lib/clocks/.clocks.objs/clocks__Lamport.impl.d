lib/clocks/lamport.ml: Format Int List
