module V = History.Value
module Op = History.Op
module Trace = Simkit.Trace
module Sched = Simkit.Sched
module Fiber = Simkit.Fiber

type mode = Safe | Regular

type wrec = { value : V.t; applied_at : int }

type pending_read = {
  op_id : int;
  proc : int;
  invoked_at : int;
  mutable resolved : V.t option;
}

type t = {
  sched : Sched.t;
  name_ : string;
  writer_ : int;
  init : V.t;
  mode_ : mode;
  mutable writes : wrec list; (* most recent first *)
  mutable write_in_progress : (V.t * int) option; (* value, invoked_at *)
  mutable reads : pending_read list;
  mutable all_values : V.t list; (* everything ever written, for Safe *)
}

let create ~sched ~name ~writer ~init ~mode =
  {
    sched;
    name_ = name;
    writer_ = writer;
    init;
    mode_ = mode;
    writes = [];
    write_in_progress = None;
    reads = [];
    all_values = [ init ];
  }

let name t = t.name_
let mode t = t.mode_
let current t = match t.writes with [] -> t.init | w :: _ -> w.value

(* A write spans two steps (invoke, take-effect+respond) so that reads can
   genuinely overlap it. *)
let write t ~proc v =
  if proc <> t.writer_ then
    invalid_arg
      (Printf.sprintf "Weak_register.write: process %d is not the writer of %s"
         proc t.name_);
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind:(Op.Write v) in
  t.write_in_progress <- Some (v, Trace.now tr);
  if not (List.exists (V.equal v) t.all_values) then
    t.all_values <- v :: t.all_values;
  Fiber.yield ();
  t.writes <- { value = v; applied_at = Trace.now tr } :: t.writes;
  t.write_in_progress <- None;
  Trace.linearize tr ~op_id;
  Trace.respond tr ~op_id ~result:None

let pending_reads t =
  List.filter_map
    (fun r -> if r.resolved = None then Some (r.op_id, r.proc) else None)
    t.reads

let find_read t op_id =
  match List.find_opt (fun r -> r.op_id = op_id) t.reads with
  | Some r -> r
  | None ->
      invalid_arg
        (Printf.sprintf "Weak_register: no pending read #%d on %s" op_id
           t.name_)

(* Values a pending read may legally return right now. *)
let legal_values t ~op_id =
  let r = find_read t op_id in
  let overlapping_writes =
    (* writes applied after the read's invocation, or in progress now *)
    List.filter_map
      (fun w -> if w.applied_at >= r.invoked_at then Some w.value else None)
      t.writes
    @ (match t.write_in_progress with Some (v, _) -> [ v ] | None -> [])
  in
  let last_before =
    match
      List.find_opt (fun w -> w.applied_at < r.invoked_at) t.writes
    with
    | Some w -> w.value
    | None -> t.init
  in
  match (t.mode_, overlapping_writes) with
  | _, [] -> [ last_before ]
  | Regular, ws -> last_before :: ws
  | Safe, _ -> t.all_values @ [ t.init ]

let resolve_read t ~op_id ~value =
  let r = find_read t op_id in
  if r.resolved <> None then
    invalid_arg
      (Printf.sprintf "Weak_register: read #%d already resolved" op_id);
  if not (List.exists (V.equal value) (legal_values t ~op_id)) then
    invalid_arg
      (Printf.sprintf
         "Weak_register: %s is not a legal return for read #%d on %s"
         (V.to_string value) op_id t.name_);
  r.resolved <- Some value

let read t ~proc =
  let tr = Sched.trace t.sched in
  let op_id = Trace.invoke tr ~proc ~obj:t.name_ ~kind:Op.Read in
  let r = { op_id; proc; invoked_at = Trace.now tr; resolved = None } in
  t.reads <- r :: t.reads;
  Fiber.yield ();
  let v =
    match r.resolved with
    | Some v -> v
    | None ->
        (* auto-resolution: the freshest legal value *)
        let v = current t in
        r.resolved <- Some v;
        v
  in
  t.reads <- List.filter (fun x -> x.op_id <> op_id) t.reads;
  Trace.respond tr ~op_id ~result:(Some v);
  v
