(** Algorithm 2 of the paper: a {e write strongly-linearizable} MWMR
    register implemented from atomic SWMR registers, using vector
    timestamps that may be only partially formed.

    One shared SWMR register [Val[i]] per process holds the last
    (value, vector-timestamp) pair written by process [i].  A writer builds
    its new timestamp one component at a time — reading [Val[1] … Val[n]]
    in index order — starting from [[∞,…,∞]]; the [∞] initialization is
    what makes the partially-formed timestamp lexicographically
    {e non-increasing} over time (Observation 25), which in turn is what
    lets Algorithm 3 linearize concurrent writes on-line at the moment any
    one of them lands in [Val[-]].

    The implementation records, in the scheduler's trace:
    - the high-level invoke/respond events (the history to be checked);
    - a [ValWrite] annotation at each line-8 write to [Val[k]];
    - a [TsSnapshot] annotation at each update of the writer's [new_ts]
      (including the initial [[∞,…,∞]] and the line-9 reset).

    Those annotations are exactly the inputs of Algorithm 3
    ({!Linchk.Alg3} in this repo). *)

type t

val create : sched:Simkit.Sched.t -> name:string -> n:int -> init:int -> t
(** An [n]-process register named [name] with initial value [init].
    Processes are identified as 1…n. *)

val name : t -> string
val n : t -> int

val write : t -> proc:int -> int -> unit
(** Algorithm 2, lines 1–10.  Must be called from process [proc]'s fiber,
    [1 <= proc <= n]. *)

val read : t -> proc:int -> int
(** Algorithm 2, lines 11–15: returns the value with the lexicographically
    greatest timestamp among all [Val[-]]. *)

val read_with_ts : t -> proc:int -> int * Clocks.Vector.t
(** Like {!read} but also returns the winning timestamp (the paper's
    line 15 returns the pair). *)

val val_contents : t -> (int * Clocks.Vector.t) array
(** Adversary/test view of the [Val[-]] array (no process step). *)
