(** Safe and regular SWMR registers — the rungs of Lamport's register
    hierarchy [25] {e below} linearizability.

    The paper's hierarchy runs
    atomic ≻ strongly linearizable ≻ write strongly-linearizable ≻
    linearizable; Lamport's weaker conditions sit further down:

    - {b regular}: a read returns the value of the last write that
      completed before the read began, or of any write concurrent with the
      read;
    - {b safe}: a read that overlaps no write returns the last written
      value; a read that overlaps a write may return {e anything}.

    Regular registers famously admit {e new–old inversion} — two
    sequential reads overlapping the same write may return the new then
    the old value — which linearizability forbids; the test suite
    constructs exactly that run and shows the exact checker rejecting it.
    (A recent follow-up [21] shows some randomized algorithms need only
    regular registers; this module makes such claims testable in this
    framework.)

    Writes are serial (single writer) and take effect atomically at one
    scheduler step; reads block until the adversary resolves them with
    {!resolve_read} (or auto-resolve to the current value when stepped,
    so non-adversarial policies make progress). *)

type mode = Safe | Regular

type t

val create :
  sched:Simkit.Sched.t ->
  name:string ->
  writer:int ->
  init:History.Value.t ->
  mode:mode ->
  t

val name : t -> string
val mode : t -> mode

(** {2 Process side} *)

val write : t -> proc:int -> History.Value.t -> unit
(** One atomic step, writer only.
    @raise Invalid_argument for a non-writer. *)

val read : t -> proc:int -> History.Value.t
(** Invoke, then block until resolved (by the adversary or by the
    auto-resolution on the next step). *)

(** {2 Adversary side} *)

val pending_reads : t -> (int * int) list
(** [(op_id, proc)] of invoked-unresolved reads. *)

val legal_values : t -> op_id:int -> History.Value.t list
(** The values the mode permits this pending read to return:
    for [Regular], the last write completed before the read's invocation
    plus every write concurrent with the read so far; for [Safe], the
    same when no write overlaps, or the sentinel-free "anything" — which
    this implementation bounds to all values ever written plus the
    initial value (enough to exhibit every distinguishing behaviour). *)

val resolve_read : t -> op_id:int -> value:History.Value.t -> unit
(** Fix the read's return value.
    @raise Invalid_argument if the value is not in {!legal_values}. *)
