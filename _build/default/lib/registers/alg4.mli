(** Algorithm 4 of the paper: a {e linearizable} MWMR register implemented
    from atomic SWMR registers using Lamport timestamps [⟨sq, pid⟩].

    This is the "simple" construction: a writer reads every [Val[-]],
    increments the maximum sequence number it saw, and publishes
    [(v, ⟨max+1, k⟩)].  Theorem 12 shows it is linearizable; Theorem 13
    shows it is {e not} write strongly-linearizable — the Lamport
    timestamp of a concurrent pending write cannot be predicted at the
    moment another write completes, so no on-line ordering of writes
    exists.  The repo's E4 experiment replays the paper's Figure-4
    histories against this implementation and verifies the impossibility
    with the history-tree checker. *)

type t

val create : sched:Simkit.Sched.t -> name:string -> n:int -> init:int -> t
val name : t -> string
val n : t -> int

val write : t -> proc:int -> int -> unit
(** Algorithm 4, lines 1–7. *)

val read : t -> proc:int -> int
(** Algorithm 4, lines 8–12. *)

val read_with_ts : t -> proc:int -> int * Clocks.Lamport.t

val val_contents : t -> (int * Clocks.Lamport.t) array
(** Test/adversary view (no process step). *)
