type 'a t = {
  name_ : string;
  writer_ : int;
  mutable value : 'a;
}

let create ~writer ~name init = { name_ = name; writer_ = writer; value = init }
let name t = t.name_
let writer t = t.writer_

let read t =
  Simkit.Fiber.yield ();
  t.value

let write t ~proc v =
  if proc <> t.writer_ then
    invalid_arg
      (Printf.sprintf "Swmr.write: process %d is not the writer of %s" proc
         t.name_);
  Simkit.Fiber.yield ();
  t.value <- v

let peek t = t.value
