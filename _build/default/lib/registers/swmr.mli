(** Atomic single-writer multi-reader base registers.

    These are the base objects from which Algorithms 2 and 4 implement a
    MWMR register.  Each access is one atomic scheduler step (the fiber
    yields immediately before it, so the adversary controls the
    interleaving of base accesses at the granularity the paper assumes).
    Base-register accesses are {e not} recorded as history events — the
    history of interest is that of the implemented MWMR register — but the
    payload type is polymorphic so Algorithms 2/4 can store
    value–timestamp tuples directly. *)

type 'a t

val create : writer:int -> name:string -> 'a -> 'a t
(** [create ~writer ~name init]: only process [writer] may write. *)

val name : 'a t -> string
val writer : 'a t -> int

val read : 'a t -> 'a
(** One atomic step (yields first).  Any process may read. *)

val write : 'a t -> proc:int -> 'a -> unit
(** One atomic step (yields first).
    @raise Invalid_argument if [proc] is not the registered writer —
    enforcing the SWMR access discipline. *)

val peek : 'a t -> 'a
(** Read without yielding — for assertions and adversaries only (does not
    model a process step). *)
