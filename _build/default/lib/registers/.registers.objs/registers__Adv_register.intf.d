lib/registers/adv_register.mli: History Simkit
