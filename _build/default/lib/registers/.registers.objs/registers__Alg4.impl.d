lib/registers/alg4.ml: Array Clocks History Printf Simkit Swmr
