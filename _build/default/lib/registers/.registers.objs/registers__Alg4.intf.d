lib/registers/alg4.mli: Clocks Simkit
