lib/registers/adv_register.ml: Format History List Simkit
