lib/registers/alg2.mli: Clocks Simkit
