lib/registers/weak_register.mli: History Simkit
