lib/registers/swmr.mli:
