lib/registers/swmr.ml: Printf Simkit
