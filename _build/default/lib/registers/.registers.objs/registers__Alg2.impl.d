lib/registers/alg2.ml: Array Clocks History Printf Simkit Swmr
