lib/registers/weak_register.ml: History List Printf Simkit
