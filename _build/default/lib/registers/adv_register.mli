(** The adversarial register: a register implementation whose linearization
    order is an explicit, adversary-editable sequence.

    This is the executable counterpart of the paper's hypotheses "if the
    registers are only linearizable …" (Theorem 6) and "… write
    strongly-linearizable" (Theorem 7).  Instead of fixing one concrete
    implementation, the register exposes to the adversary exactly the power
    that the corresponding correctness condition permits, and no more:

    - {b Atomic}: every operation takes effect at its invocation and
      responds immediately; the adversary controls only process speeds.
    - {b Write_strong}: the committed sequence of {e write} operations is
      append-only — once a write is linearized its position is irrevocable,
      and it must be linearized no later than its response.  Reads may
      still be inserted retroactively at any legal position.  (Definition 4.)
    - {b Linearizable}: the adversary may insert {e any} pending operation
      at {e any} legal position of the committed sequence, including before
      operations that were committed long ago — the "off-line" freedom of
      plain linearizability (Definition 2) that the Theorem 6 adversary
      exploits.

    "Legal" always means: real-time precedence is respected (an operation is
    never placed before one that completed before it was invoked) and every
    already-linearized read still observes the value it already returned (or
    captured).  Attempted illegal edits raise {!Illegal}, so a successful
    run is itself evidence that the produced history is linearizable; the
    committed sequence is returned by {!linearization} as a checkable
    witness.

    Process-side operations ({!write}, {!read}) must be called from inside a
    scheduler fiber.  An operation spans at least two scheduler steps
    (invoke, then respond) unless the mode is [Atomic]; while it is pending
    the adversary may commit it with {!commit} / {!commit_end}.  Stepping a
    process whose pending operation is uncommitted auto-commits it at the
    end of the sequence (so non-adversarial policies such as round-robin
    drive every operation to completion unaided). *)

exception Illegal of string

type mode = Atomic | Write_strong | Linearizable

type t

val create :
  sched:Simkit.Sched.t -> name:string -> init:History.Value.t -> mode:mode -> t

val name : t -> string
val mode : t -> mode

(** {2 Process-side API (call inside fibers)} *)

val write : t -> proc:int -> History.Value.t -> unit
val read : t -> proc:int -> History.Value.t

(** {2 Adversary-side API} *)

val pending : t -> (int * int * History.Op.kind) list
(** [(op_id, proc, kind)] of invoked-but-uncommitted operations, in
    invocation order. *)

val pending_of_proc : t -> proc:int -> int option
(** The pending op id of a process, if any (processes are sequential, so
    at most one). *)

val committed_ids : t -> int list
(** Op ids of the committed sequence, in linearization order. *)

val commit_end : t -> op_id:int -> unit
(** Append the pending operation to the committed sequence.
    @raise Illegal if unknown, already committed, or inconsistent. *)

val commit : t -> op_id:int -> pos:int -> unit
(** Insert the pending operation at position [pos] (0-based) of the
    committed sequence.  In [Write_strong] mode a write may only be
    appended after every committed write (reads between remain allowed);
    in [Atomic] mode the adversary may not commit at all.
    @raise Illegal on any violation (real-time precedence, a committed
    read's captured value changing, mode restriction, double commit). *)

val position_of : t -> op_id:int -> int option
(** Position of a committed op in the sequence. *)

val current_value : t -> History.Value.t
(** Value of the last committed write ([init] if none). *)

val linearization : t -> History.Op.t list
(** The committed sequence as operation records (reads carry their captured
    result; operations still pending in the history carry their eventual
    result but no response time).  This is the online-maintained [f(H)]. *)

val write_commit_log : t -> (int * int list) list
(** After each commit involving a write, the (time, write-op-ids in
    linearization order) snapshot — the data that shows whether the write
    sequence evolved append-only (property (P) of Definition 4) or was
    retroactively edited (possible only in [Linearizable] mode). *)
