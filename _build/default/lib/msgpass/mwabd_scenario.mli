(** The Theorem-13 counterexample transposed to message passing: the
    multi-writer ABD register is linearizable but not write
    strongly-linearizable, because a pending writer's Lamport timestamp
    depends on which timestamp-query replies the network delivers.

    Construction (3 nodes, writers at nodes 0 and 1, reader at node 2):

    - common prefix [G]: writer 0's write [w1] broadcasts its timestamp
      query and receives one reply (sq 0) — one short of a majority —
      while a second sq-0 reply sits undelivered and node 2's server has
      not yet processed the query.  Writer 1's write [w2] then runs to
      completion (timestamp ⟨1,1⟩ valued at node servers 1 and 2).
    - extension [H1]: deliver the {e stale} in-flight reply (sq 0) — [w1]
      forms ⟨1,0⟩ < ⟨1,1⟩, completes, and a read returns [w2]'s value:
      any linearization puts [w1] {e before} [w2].
    - extension [H2]: instead let node 2's server (which now stores sq 1)
      process the query — [w1] forms ⟨2,0⟩ > ⟨1,1⟩, completes, and a read
      returns [w1]'s value: [w2] {e before} [w1].

    The two extensions share [G] event-for-event, so the history tree
    {G → H1, H2} admits no write strong-linearization function — verified
    by the exact tree checker. *)

type outcome = {
  g : History.Hist.t;
  h1 : History.Hist.t;
  h2 : History.Hist.t;
  wsl_impossible : bool;
  chains_ok : bool;
  all_linearizable : bool;
}

val run : unit -> outcome
