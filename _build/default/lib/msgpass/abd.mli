(** The ABD register (Attiya, Bar-Noy, Dolev 1995): a linearizable SWMR
    register in an asynchronous message-passing system where fewer than
    half of the nodes may crash.

    The paper's §6 discusses ABD as the canonical bridge between
    message-passing and shared-memory systems, notes that it is {e not}
    strongly linearizable [20], and proves (Theorem 14) that — like every
    linearizable SWMR implementation — it {e is} write strongly-
    linearizable.  Experiment E6 runs this implementation under random
    asynchrony and crashes, checks every produced history for
    linearizability, and applies the [f*] construction of Theorem 14 to
    every prefix chain to confirm the write-prefix property.

    Protocol (one writer, [n] nodes, majorities of size [⌊n/2⌋+1]):
    - {b write(v)}: the writer increments its local sequence number [ts],
      broadcasts [Write_req(ts, v)], and returns once a majority of nodes
      acknowledged storing the pair;
    - {b read()}: the reader broadcasts a query, collects a majority of
      (ts, v) replies, selects the pair with the largest [ts], {e writes
      it back} to a majority (the famous "readers must write" phase —
      without it two sequential reads could observe new-then-old), and
      returns [v].

    Each node runs a server fiber (pid [100 + node]) holding its replica
    and a client fiber (pid [node]) issuing operations. *)

type t

type msg
(** Protocol messages (abstract; exposed so callers can thread the
    register's network into a delivery policy). *)

val net : t -> msg Net.t

val create :
  sched:Simkit.Sched.t -> name:string -> n:int -> writer:int -> init:int -> t
(** [n >= 2] nodes ([< 100]); spawns the [n] server fibers.  Client code
    runs in the node fibers the caller spawns. *)

val name : t -> string
val n : t -> int
val writer : t -> int
val majority : t -> int

val write : t -> int -> unit
(** Writer-client operation; must run in fiber [writer].
    @raise Invalid_argument from a non-writer fiber's pid. *)

val read : t -> reader:int -> int
(** Reader-client operation; must run in fiber [reader]. *)

val crash_node : t -> node:int -> unit
(** Crash a node's server (and its client fiber if spawned): it stops
    acknowledging.  The caller is responsible for keeping a majority
    alive. *)

val server_pid : node:int -> int
