lib/msgpass/net.mli: Simkit
