lib/msgpass/mwabd.mli: Net Simkit
