lib/msgpass/runs.mli: History
