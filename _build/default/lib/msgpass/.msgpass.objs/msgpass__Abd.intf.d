lib/msgpass/abd.mli: Net Simkit
