lib/msgpass/mwabd_scenario.mli: History
