lib/msgpass/abd.ml: Array History Net Simkit
