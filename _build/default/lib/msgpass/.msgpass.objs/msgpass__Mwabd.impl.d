lib/msgpass/mwabd.ml: Array History Int Net Simkit
