lib/msgpass/net.ml: Hashtbl List Queue Simkit
