lib/msgpass/mwabd_scenario.ml: History Linchk List Mwabd Net Printf Simkit
