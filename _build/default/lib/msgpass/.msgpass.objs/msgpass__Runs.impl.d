lib/msgpass/runs.ml: Abd History Int64 Linchk List Mwabd Net Simkit
