(** An asynchronous message-passing network on top of the simulator.

    Messages are reliable but arbitrarily delayed and reordered: a send
    enqueues the message as {e in-flight}; it becomes receivable only once
    the delivery policy moves it to the destination's mailbox.  Receivers
    block (yield) until their mailbox is non-empty.  Crash faults come from
    {!Simkit.Sched.crash} — a crashed process simply stops taking steps,
    and its mail accumulates unread.

    The default {!auto_deliver} policy delivers a uniformly random
    in-flight message between process steps, giving the random asynchrony
    the ABD experiments use; adversarial tests can instead call
    {!deliver_now}/{!deliver_where} to impose specific delivery orders. *)

type 'a t

val create : sched:Simkit.Sched.t -> n:int -> 'a t
(** Network among processes (fiber pids) [0 … n-1] and their server
    fibers; any pid registered with the scheduler may send/receive. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Enqueue in-flight (no yield: sending is part of the current step). *)

val broadcast : 'a t -> src:int -> 'a -> unit
(** Send to all n base processes, including [src] (self-delivery is via
    the network too, keeping the quorum logic uniform). *)

val recv : 'a t -> pid:int -> 'a
(** Block (yield) until a delivered message for [pid] exists; dequeue the
    oldest.  Must be called within a fiber. *)

val try_recv : 'a t -> pid:int -> 'a option
(** Non-blocking variant (no yield). *)

val in_flight : 'a t -> int
(** Number of undelivered messages. *)

val mailbox_size : 'a t -> pid:int -> int

val deliver_one : 'a t -> rng:Simkit.Rng.t -> bool
(** Move one uniformly random in-flight message to its mailbox; [false]
    if none are in flight. *)

val deliver_now : 'a t -> dst:int -> bool
(** Deliver the oldest in-flight message addressed to [dst]. *)

val deliver_from : 'a t -> src:int -> dst:int -> bool
(** Deliver the oldest in-flight message from [src] to [dst] — the
    fine-grained control the scripted adversarial scenarios need. *)

val deliver_all : 'a t -> unit
(** Flush every in-flight message (used to end experiments cleanly). *)

val drop_to : 'a t -> dst:int -> unit
(** Discard all in-flight messages addressed to [dst] — used with
    {!Simkit.Sched.crash} to model a crashed node whose links die too. *)

val auto_deliver_policy :
  'a t -> rng:Simkit.Rng.t -> Simkit.Sched.policy -> Simkit.Sched.policy
(** Wrap a scheduling policy: before each decision, with probability ~1/2
    deliver a random in-flight message.  Keeps the network flowing under
    any process-scheduling policy. *)
